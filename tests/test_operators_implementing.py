"""Implementing-stage operator tests."""

import pytest

from repro.core.metadata import MatrixMetadataSet
from repro.core.operators import OPERATOR_REGISTRY, OperatorError, Stage, get_operator


def compressed(matrix):
    meta = MatrixMetadataSet.from_matrix(matrix)
    op = get_operator("COMPRESS")
    op.apply(meta, {})
    return meta


class TestSetResources:
    def test_sets_tpb(self, small_regular):
        meta = compressed(small_regular)
        op = get_operator("SET_RESOURCES")
        op.apply(meta, op.resolve_params({"threads_per_block": 512}))
        assert meta.threads_per_block == 512

    def test_warp_multiple_enforced(self, small_regular):
        meta = compressed(small_regular)
        op = get_operator("SET_RESOURCES")
        with pytest.raises(OperatorError):
            op.apply(meta, op.resolve_params({"threads_per_block": 100}))

    def test_grid_threads_for_unmapped(self, small_regular):
        meta = compressed(small_regular)
        op = get_operator("SET_RESOURCES")
        op.apply(meta, op.resolve_params({"work_per_thread": 4}))
        expected = (small_regular.nnz + 3) // 4
        assert meta.grid_threads == expected

    def test_no_grid_threads_when_mapped(self, small_regular):
        meta = compressed(small_regular)
        block = get_operator("BMT_ROW_BLOCK")
        block.apply(meta, block.resolve_params({"rows_per_block": 1}))
        op = get_operator("SET_RESOURCES")
        op.apply(meta, op.resolve_params({"work_per_thread": 4}))
        assert meta.grid_threads is None

    def test_invalid_work_per_thread(self, small_regular):
        meta = compressed(small_regular)
        op = get_operator("SET_RESOURCES")
        with pytest.raises(OperatorError):
            op.apply(meta, op.resolve_params({"work_per_thread": 0}))


class TestReductionChainRules:
    def test_appends_steps(self, small_regular):
        meta = compressed(small_regular)
        get_operator("THREAD_TOTAL_RED").apply(meta, {})
        get_operator("WARP_SEG_RED").apply(meta, {})
        get_operator("GMEM_ATOM_RED").apply(meta, {})
        assert meta.reduction_steps == [
            ("thread", "THREAD_TOTAL_RED"),
            ("warp", "WARP_SEG_RED"),
            ("global", "GMEM_ATOM_RED"),
        ]

    def test_level_must_not_decrease(self, small_regular):
        meta = compressed(small_regular)
        get_operator("WARP_SEG_RED").apply(meta, {})
        op = get_operator("THREAD_TOTAL_RED")
        with pytest.raises(OperatorError, match="non-decreasing"):
            op.check(meta, {})

    def test_no_duplicate_level(self, small_regular):
        meta = compressed(small_regular)
        get_operator("WARP_SEG_RED").apply(meta, {})
        op = get_operator("WARP_TOTAL_RED")
        with pytest.raises(OperatorError, match="already exists"):
            op.check(meta, {})

    def test_nothing_after_global(self, small_regular):
        meta = compressed(small_regular)
        get_operator("GMEM_ATOM_RED").apply(meta, {})
        op = get_operator("GMEM_DIRECT_STORE")
        with pytest.raises(OperatorError):
            op.check(meta, {})

    def test_requires_compress(self, small_regular):
        meta = MatrixMetadataSet.from_matrix(small_regular)
        op = get_operator("THREAD_TOTAL_RED")
        with pytest.raises(OperatorError, match="COMPRESS"):
            op.check(meta, {})


class TestRegistryCoverage:
    def test_all_table2_operators_registered(self):
        """Table II's operator inventory must be complete."""
        expected = {
            # converting
            "ROW_DIV", "COL_DIV", "SORT", "SORT_SUB", "BIN", "COMPRESS",
            # mapping
            "BMTB_ROW_BLOCK", "BMW_ROW_BLOCK", "BMT_ROW_BLOCK",
            "BMTB_COL_BLOCK", "BMT_COL_BLOCK",
            "BMTB_NNZ_BLOCK", "BMW_NNZ_BLOCK", "BMT_NNZ_BLOCK",
            "BMTB_PAD", "BMW_PAD", "BMT_PAD", "BMTB_ROW_PAD",
            "SORT_BMTB", "INTERLEAVED_STORAGE",
            # implementing
            "SET_RESOURCES", "GMEM_ATOM_RED", "GMEM_DIRECT_STORE",
            "SHMEM_OFFSET_RED", "SHMEM_TOTAL_RED",
            "WARP_TOTAL_RED", "WARP_BITMAP_RED", "WARP_SEG_RED",
            "THREAD_TOTAL_RED", "THREAD_BITMAP_RED",
        }
        assert expected <= set(OPERATOR_REGISTRY)

    def test_every_operator_has_stage_and_source(self):
        for name, op in OPERATOR_REGISTRY.items():
            assert isinstance(op.stage, Stage), name
            assert op.description, name

    def test_param_specs_well_formed(self):
        for op in OPERATOR_REGISTRY.values():
            for spec in op.params:
                assert set(spec.coarse) <= set(spec.fine)
                assert spec.default == spec.coarse[0]

    def test_unknown_param_rejected(self):
        op = get_operator("SET_RESOURCES")
        with pytest.raises(OperatorError):
            op.resolve_params({"bogus": 1})
