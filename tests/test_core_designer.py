"""Designer tests: graph execution, branching, error wrapping."""

import pytest

from repro.core.designer import DesignError, Designer
from repro.core.graph import GraphNode, OperatorGraph


CSR_SCALAR = ["COMPRESS", "BMT_ROW_BLOCK", "SET_RESOURCES",
              "THREAD_TOTAL_RED", "GMEM_DIRECT_STORE"]


class TestLinear:
    def test_single_leaf(self, small_regular):
        leaves = Designer().design(small_regular, OperatorGraph.from_names(CSR_SCALAR))
        assert len(leaves) == 1
        assert leaves[0].branch_path == ()
        assert leaves[0].label == "root"
        assert leaves[0].meta.applied_operators == CSR_SCALAR

    def test_metadata_transformed(self, small_regular):
        leaves = Designer().design(small_regular, OperatorGraph.from_names(CSR_SCALAR))
        meta = leaves[0].meta
        assert meta.compressed
        assert meta.finest_level() == "bmt"
        assert meta.reduction_steps[-1] == ("global", "GMEM_DIRECT_STORE")


class TestBranching:
    def test_shared_continuation(self, small_irregular):
        g = OperatorGraph.from_names(
            [("ROW_DIV", {"strategy": "equal", "parts": 3})] + CSR_SCALAR
        )
        leaves = Designer().design(small_irregular, g)
        assert len(leaves) == 3
        assert [l.branch_path for l in leaves] == [(0,), (1,), (2,)]
        assert sum(l.meta.useful_nnz for l in leaves) == small_irregular.nnz

    def test_explicit_children(self, small_irregular):
        thread_child = [GraphNode(n) for n in
                        ["COMPRESS", "BMT_ROW_BLOCK", "THREAD_TOTAL_RED", "GMEM_ATOM_RED"]]
        warp_child = [GraphNode(n) for n in
                      ["COMPRESS", "BMW_ROW_BLOCK", "WARP_SEG_RED", "GMEM_ATOM_RED"]]
        g = OperatorGraph(
            [GraphNode("BIN", {"n_bins": 2}, children=[thread_child, warp_child])]
        )
        leaves = Designer().design(small_irregular, g)
        assert 1 <= len(leaves) <= 2
        if len(leaves) == 2:
            assert leaves[0].meta.finest_level() == "bmt"
            assert leaves[1].meta.finest_level() == "bmw"

    def test_children_cycled_when_fewer_than_partitions(self, small_irregular):
        child = [GraphNode(n) for n in CSR_SCALAR]
        g = OperatorGraph(
            [GraphNode("ROW_DIV", {"strategy": "equal", "parts": 4},
                       children=[child])]
        )
        leaves = Designer().design(small_irregular, g)
        assert len(leaves) == 4  # single child template reused

    def test_nested_labels(self, small_irregular):
        g = OperatorGraph.from_names(
            [("ROW_DIV", {"strategy": "equal", "parts": 2})] + CSR_SCALAR
        )
        leaves = Designer().design(small_irregular, g)
        assert leaves[0].label == "0"
        assert leaves[1].label == "1"


class TestErrors:
    def test_operator_error_wrapped(self, small_regular):
        # SET_RESOURCES with non-warp-multiple tpb fails inside apply.
        g = OperatorGraph.from_names(
            ["COMPRESS", ("SET_RESOURCES", {"threads_per_block": 100}),
             "GMEM_ATOM_RED"]
        )
        with pytest.raises(DesignError, match="SET_RESOURCES"):
            Designer().design(small_regular, g)

    def test_invariants_can_be_disabled(self, small_regular):
        leaves = Designer(check_invariants=False).design(
            small_regular, OperatorGraph.from_names(CSR_SCALAR)
        )
        assert len(leaves) == 1
