"""Format construction tests."""

import pytest

from repro.core.designer import Designer
from repro.core.format import build_format
from repro.core.graph import OperatorGraph
from repro.core.optimizer import ModelDrivenCompressor


def design(matrix, ops):
    return Designer().design(matrix, OperatorGraph.from_names(ops))[0].meta


class TestExtraction:
    def test_minimal_format(self, small_regular):
        meta = design(small_regular, ["COMPRESS", "SET_RESOURCES", "GMEM_ATOM_RED"])
        fmt = build_format(meta)
        names = [a.name for a in fmt.arrays]
        assert names[:2] == ["values", "col_indices"]
        assert "origin_rows" not in names  # identity mapping omitted

    def test_sorted_format_keeps_origin_rows(self, small_irregular):
        meta = design(
            small_irregular,
            ["SORT", "COMPRESS", "BMT_ROW_BLOCK", "THREAD_TOTAL_RED",
             "GMEM_DIRECT_STORE"],
        )
        fmt = build_format(meta)
        assert "origin_rows" in fmt

    def test_block_offsets_included(self, small_regular):
        meta = design(
            small_regular,
            ["COMPRESS", ("BMTB_ROW_BLOCK", {"rows_per_block": 32}),
             "SHMEM_OFFSET_RED", "GMEM_DIRECT_STORE"],
        )
        fmt = build_format(meta)
        assert "bmtb_nz_offsets" in fmt
        assert "bmtb_row_offsets" in fmt

    def test_array_lookup(self, small_regular):
        meta = design(small_regular, ["COMPRESS", "SET_RESOURCES", "GMEM_ATOM_RED"])
        fmt = build_format(meta)
        assert fmt.array("values").data.size == small_regular.nnz
        with pytest.raises(KeyError):
            fmt.array("nonexistent")


class TestByteAccounting:
    def test_raw_bytes(self, small_regular):
        meta = design(small_regular, ["COMPRESS", "SET_RESOURCES", "GMEM_ATOM_RED"])
        fmt = build_format(meta, compressor=None)
        assert fmt.raw_bytes == small_regular.nnz * 8  # 4B value + 4B col
        assert fmt.total_bytes == fmt.raw_bytes
        assert fmt.aux_bytes == 0

    def test_compression_reduces_bytes(self, small_regular):
        ops = ["COMPRESS", ("BMTB_ROW_BLOCK", {"rows_per_block": 32}),
               "BMT_ROW_BLOCK", "THREAD_TOTAL_RED", "GMEM_DIRECT_STORE"]
        meta = design(small_regular, ops)
        plain = build_format(meta, compressor=None)
        compressed = build_format(meta, compressor=ModelDrivenCompressor())
        assert compressed.total_bytes < plain.total_bytes
        assert compressed.compression_ratio < 1.0
        # uniform 32-row blocking => the block row offsets are linear
        # (bmt_nz_offsets stays in memory: band-boundary rows are shorter)
        assert compressed.array("bmtb_row_offsets").compressed
        assert compressed.array("bmt_row_offsets").compressed

    def test_values_never_compressed(self, small_regular):
        meta = design(small_regular, ["COMPRESS", "SET_RESOURCES", "GMEM_ATOM_RED"])
        fmt = build_format(meta, compressor=ModelDrivenCompressor())
        assert fmt.array("values").model is None
        assert fmt.array("col_indices").model is None

    def test_describe_mentions_models(self, small_regular):
        ops = ["COMPRESS", ("BMTB_ROW_BLOCK", {"rows_per_block": 32}),
               "SHMEM_OFFSET_RED", "GMEM_DIRECT_STORE"]
        meta = design(small_regular, ops)
        text = build_format(meta, compressor=ModelDrivenCompressor()).describe()
        assert "model[" in text
        assert "values" in text
