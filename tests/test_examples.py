"""Smoke tests: every shipped example must run end to end.

Examples are part of the public deliverable; these tests execute each one
in-process (stdout captured by pytest) so a refactor can never silently
break them.
"""

import os
import runpy
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

ALL_EXAMPLES = sorted(
    f for f in os.listdir(EXAMPLES_DIR) if f.endswith(".py")
)


def test_examples_directory_complete():
    """The deliverable promises at least a quickstart plus domain scenarios."""
    assert "quickstart.py" in ALL_EXAMPLES
    assert len(ALL_EXAMPLES) >= 3


@pytest.mark.parametrize("script", ALL_EXAMPLES)
def test_example_runs(script, monkeypatch, capsys):
    monkeypatch.setattr(sys, "argv", [script])
    runpy.run_path(os.path.join(EXAMPLES_DIR, script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), f"{script} produced no output"
