"""Baseline format tests: correctness on every pattern + oracle PFS."""

import numpy as np
import pytest

from repro.baselines import (
    BASELINE_REGISTRY,
    PFS_MEMBERS,
    SOTA_FORMATS,
    PerfectFormatSelector,
    get_baseline,
)
from repro.baselines.hyb import hyb_split
from repro.gpu import A100, RTX2080
from repro.sparse import banded_matrix, power_law_matrix, rows_with_outliers_matrix


ALL_NAMES = sorted(BASELINE_REGISTRY)


class TestRegistry:
    def test_pfs_members_registered(self):
        for name in PFS_MEMBERS:
            assert name in BASELINE_REGISTRY

    def test_sota_subset(self):
        assert set(SOTA_FORMATS) <= set(PFS_MEMBERS)
        assert len(SOTA_FORMATS) == 5
        assert len(PFS_MEMBERS) == 10

    def test_unknown_baseline(self):
        with pytest.raises(KeyError):
            get_baseline("SPARSE9000")


@pytest.mark.parametrize("name", ALL_NAMES)
def test_baseline_correct_on_irregular(name, small_irregular, x_for):
    b = get_baseline(name)
    meas = b.measure(small_irregular, A100, x_for(small_irregular))
    if meas.applicable:
        assert meas.correct, f"{name} produced wrong results"
        assert meas.gflops > 0
    else:
        assert meas.gflops == 0.0


@pytest.mark.parametrize("name", ALL_NAMES)
def test_baseline_correct_on_regular(name, small_regular, x_for):
    meas = get_baseline(name).measure(small_regular, A100, x_for(small_regular))
    assert not meas.applicable or meas.correct


class TestMeasurementContract:
    def test_inapplicable_measurement_is_finite(self):
        """Regression: inapplicable formats used to carry time_s=inf, which
        broke any column sum/mean in reporting."""
        skewed = rows_with_outliers_matrix(600, base_len=4, outlier_len=500, seed=0)
        meas = get_baseline("ELL").measure(skewed, A100)
        assert not meas.applicable
        assert not meas.ok
        assert np.isfinite(meas.time_s) and np.isfinite(meas.gflops)
        assert meas.gflops == 0.0

    @pytest.mark.parametrize("name", ["COO", "row-grouped CSR"])
    def test_atomic_baseline_not_misflagged_on_dense_rows(self, name, x_for):
        """Regression: atomic-reduction baselines accumulate partials in a
        different order than the reference SpMV; the old rtol=1e-9 gate
        could misflag them incorrect (0 GFLOPS) on dense-ish matrices."""
        from repro.sparse import block_diagonal_matrix

        dense_ish = block_diagonal_matrix(24, block_size=48, fill=0.9, seed=9)
        meas = get_baseline(name).measure(dense_ish, A100, x_for(dense_ish))
        assert meas.applicable
        assert meas.correct, f"{name} misflagged incorrect on dense-ish matrix"
        assert meas.gflops > 0
        assert meas.ok

    def test_shared_reference_matches_unshared(self, small_regular, x_for):
        """The batched path (precomputed reference) must measure the same."""
        x = x_for(small_regular)
        ref = small_regular.spmv_reference(x)
        a = get_baseline("CSR").measure(small_regular, A100, x)
        b = get_baseline("CSR").measure(small_regular, A100, x, reference=ref)
        assert a == b

    def test_measure_baselines_batched(self, small_regular, x_for):
        from repro.baselines.base import measure_baselines
        from repro.search.evaluation import EvaluationRuntime

        names = ["CSR", "COO", "ELL", "DIA"]
        serial = measure_baselines(small_regular, A100, names, x=x_for(small_regular))
        assert list(serial) == names
        with EvaluationRuntime(jobs=3) as runtime:
            pooled = measure_baselines(
                small_regular, A100, names, x=x_for(small_regular), runtime=runtime
            )
        assert serial == pooled


class TestApplicability:
    def test_ell_refuses_skewed(self):
        skewed = rows_with_outliers_matrix(600, base_len=4, outlier_len=500, seed=0)
        assert not get_baseline("ELL").applicable(skewed)

    def test_ell_accepts_regular(self, small_regular):
        assert get_baseline("ELL").applicable(small_regular)

    def test_dia_accepts_banded(self, small_regular):
        assert get_baseline("DIA").applicable(small_regular)

    def test_dia_refuses_scattered(self, small_irregular):
        assert not get_baseline("DIA").applicable(small_irregular)

    def test_dia_correct_on_banded(self, small_regular, x_for):
        meas = get_baseline("DIA").measure(small_regular, A100, x_for(small_regular))
        assert meas.correct


class TestHyb:
    def test_split_partitions_nnz(self, small_irregular):
        ell, coo = hyb_split(small_irregular, 4)
        total = ell.nnz + (coo.nnz if coo is not None else 0)
        assert total == small_irregular.nnz
        assert ell.row_lengths().max() <= 4

    def test_split_no_overflow(self, small_regular):
        width = int(small_regular.row_lengths().max())
        ell, coo = hyb_split(small_regular, width)
        assert coo is None
        assert ell.nnz == small_regular.nnz

    def test_two_kernels_on_skewed(self):
        skewed = rows_with_outliers_matrix(400, base_len=6, seed=1)
        prog = get_baseline("HYB").program(skewed)
        assert prog.n_kernels == 2

    def test_hyb_good_on_outlier_pattern(self):
        """The §VII-H story: HYB's decomposition suits GL7d19-like input."""
        skewed = rows_with_outliers_matrix(2000, base_len=10, seed=2)
        x = np.random.default_rng(0).random(skewed.n_cols)
        hyb = get_baseline("HYB").measure(skewed, A100, x)
        sell = get_baseline("SELL").measure(skewed, A100, x)
        assert hyb.correct
        assert hyb.gflops > sell.gflops


class TestCsrAutoConfig:
    def test_short_rows_use_scalar(self):
        m = power_law_matrix(300, avg_degree=2, seed=0)
        graph = get_baseline("CSR").graph(m)
        assert "BMT_ROW_BLOCK" in graph.operator_names()

    def test_long_rows_use_vector(self, small_regular):
        graph = get_baseline("CSR").graph(small_regular)
        assert "BMW_ROW_BLOCK" in graph.operator_names()


class TestPfs:
    def test_selects_maximum(self, small_irregular, x_for):
        x = x_for(small_irregular)
        sel = PerfectFormatSelector().select(small_irregular, A100, x)
        usable = [m.gflops for m in sel.all_measurements if m.correct]
        assert sel.gflops == max(usable)
        assert sel.selected_format in PFS_MEMBERS

    def test_all_members_measured(self, small_irregular):
        sel = PerfectFormatSelector().select(small_irregular, A100)
        assert len(sel.all_measurements) == len(PFS_MEMBERS)
        assert set(sel.by_name()) == set(PFS_MEMBERS)

    def test_custom_member_list(self, small_regular):
        sel = PerfectFormatSelector(["COO", "CSR"]).select(small_regular, A100)
        assert sel.selected_format in ("COO", "CSR")

    def test_different_winners_by_pattern(self, x_for):
        """Format diversity: no single format wins everywhere (Problem 1)."""
        regular = banded_matrix(2000, bandwidth=8, seed=0)
        irregular = power_law_matrix(3000, avg_degree=8, seed=0)
        pfs = PerfectFormatSelector()
        w_reg = pfs.select(regular, A100).selected_format
        w_irr = pfs.select(irregular, A100).selected_format
        assert w_reg != w_irr


class TestCrossGpu:
    def test_baselines_scale_with_gpu(self, small_regular, x_for):
        x = x_for(small_regular)
        a = get_baseline("CSR").measure(small_regular, A100, x)
        t = get_baseline("CSR").measure(small_regular, RTX2080, x)
        assert a.gflops > t.gflops
