"""Artifact-export tests."""

import json
import os

import numpy as np
import pytest

from repro.core import OperatorGraph, build_program
from repro.export import export_program, load_exported_graph, read_manifest


GRAPH_OPS = [
    "SORT", "COMPRESS", ("BMTB_ROW_BLOCK", {"rows_per_block": 32}),
    "BMT_ROW_BLOCK", ("BMT_PAD", {"mode": "max"}), "INTERLEAVED_STORAGE",
    "THREAD_TOTAL_RED", "GMEM_ATOM_RED",
]


@pytest.fixture
def exported(tmp_path, small_irregular):
    graph = OperatorGraph.from_names(GRAPH_OPS)
    program = build_program(small_irregular, graph)
    manifest_path = export_program(program, tmp_path / "artifact", graph)
    return tmp_path / "artifact", program, graph, manifest_path


class TestExport:
    def test_manifest_written(self, exported):
        directory, program, _, manifest_path = exported
        assert os.path.exists(manifest_path)
        manifest = read_manifest(directory)
        assert manifest["matrix_name"] == program.matrix_name
        assert manifest["useful_nnz"] == program.useful_nnz
        assert len(manifest["kernels"]) == program.n_kernels

    def test_kernel_source_written(self, exported):
        directory, program, _, _ = exported
        manifest = read_manifest(directory)
        src_file = directory / manifest["kernels"][0]["source"]
        text = src_file.read_text()
        assert "__global__" in text

    def test_arrays_round_trip(self, exported):
        directory, program, _, _ = exported
        manifest = read_manifest(directory)
        unit = program.kernels[0]
        for entry in manifest["kernels"][0]["arrays"]:
            arr = unit.format.array(entry["name"])
            if "file" in entry:
                loaded = np.load(directory / entry["file"])
                np.testing.assert_array_equal(loaded, arr.data)
            else:
                # Modelled arrays ship as closed forms, not files.
                assert entry["model"]["kind"] in (
                    "linear", "step", "periodic_linear"
                )
                assert arr.model is not None

    def test_modelled_arrays_reconstructable(self, exported):
        """The exported model JSON must regenerate the original array."""
        from repro.core.optimizer import CompressionModel

        directory, program, _, _ = exported
        manifest = read_manifest(directory)
        unit = program.kernels[0]
        for entry in manifest["kernels"][0]["arrays"]:
            if "model" not in entry:
                continue
            spec = entry["model"]
            model = CompressionModel(
                kind=spec["kind"],
                coeffs=tuple(spec["coeffs"]),
                period=spec["period"],
                exceptions=tuple(tuple(e) for e in spec["exceptions"]),
                length=spec["length"],
            )
            original = unit.format.array(entry["name"]).data
            np.testing.assert_array_equal(
                model.predict(np.arange(original.size)), original
            )

    def test_graph_round_trip(self, exported):
        directory, _, graph, _ = exported
        again = load_exported_graph(directory)
        assert again == graph

    def test_launch_config_recorded(self, exported):
        directory, program, _, _ = exported
        manifest = read_manifest(directory)
        launch = manifest["kernels"][0]["launch"]
        assert launch["threads_per_block"] == program.kernels[0].plan.threads_per_block
        assert launch["interleaved"] is True

    def test_manifest_is_valid_json(self, exported):
        directory, _, _, manifest_path = exported
        with open(manifest_path) as handle:
            json.load(handle)  # must not raise
