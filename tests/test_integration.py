"""End-to-end integration and property tests across the whole pipeline.

The central invariant: *every* statically valid Operator Graph that survives
design + build must compute exactly ``A @ x``.  The structure sampler is the
adversary here — whatever it can propose, the generated program must either
be rejected with a typed error or produce correct numbers.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.designer import DesignError
from repro.core.graph import OperatorGraph
from repro.core.kernel.builder import BuildError, build_program
from repro.gpu import A100, RTX2080
from repro.gpu.executor import PlanValidationError
from repro.search.space import StructureSampler, enumerate_param_grid, graph_with_params
from repro.sparse import lp_like_matrix, power_law_matrix


MATRIX = power_law_matrix(700, avg_degree=7, seed=99, name="integration")
X = np.random.default_rng(123).random(MATRIX.n_cols)
REFERENCE = MATRIX.spmv_reference(X)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=80, deadline=None)
def test_property_sampled_graphs_correct_or_rejected(seed):
    sampler = StructureSampler(seed=seed)
    proposal = sampler.sample()
    assignments = enumerate_param_grid(
        proposal.graph, proposal.locks, cap=2,
        rng=np.random.default_rng(seed),
    )
    graph = graph_with_params(proposal.graph, assignments[-1], proposal.locks)
    try:
        program = build_program(MATRIX, graph)
        result = program.run(X, A100)
    except (DesignError, BuildError, PlanValidationError):
        return  # typed rejection is an acceptable outcome
    np.testing.assert_allclose(result.y, REFERENCE, rtol=1e-9, atol=1e-9)
    assert result.total_time_s > 0
    assert result.gflops > 0


class TestCrossGpuConsistency:
    def test_same_numbers_different_time(self):
        graph = OperatorGraph.from_names(
            ["COMPRESS", ("BMW_ROW_BLOCK", {"rows_per_block": 1}),
             "WARP_TOTAL_RED", "GMEM_DIRECT_STORE"]
        )
        program = build_program(MATRIX, graph)
        res_a = program.run(X, A100)
        res_t = program.run(X, RTX2080)
        np.testing.assert_array_equal(res_a.y, res_t.y)
        assert res_a.total_time_s < res_t.total_time_s


class TestSearchBeatsNaive:
    def test_search_beats_coo(self):
        from repro.baselines import get_baseline
        from repro.search import SearchBudget, SearchEngine

        m = lp_like_matrix(900, seed=17, name="beats_coo")
        res = SearchEngine(
            A100,
            budget=SearchBudget(max_structures=6, coarse_evals_per_structure=4,
                                max_total_evals=30),
            seed=0,
        ).search(m)
        coo = get_baseline("COO").measure(m, A100)
        assert res.best_gflops > coo.gflops


class TestFullArtifactFlow:
    def test_search_export_reload_run(self, tmp_path):
        """The user story: search, export the artifact, reload the graph,
        rebuild the program elsewhere, get identical numbers."""
        from repro.export import export_program, load_exported_graph
        from repro.search import SearchBudget, SearchEngine

        m = lp_like_matrix(600, seed=5, name="artifact_flow")
        res = SearchEngine(
            A100,
            budget=SearchBudget(max_structures=5, coarse_evals_per_structure=4,
                                max_total_evals=24),
            seed=9,
        ).search(m)
        export_program(res.best_program, tmp_path / "out", res.best_graph)
        graph = load_exported_graph(tmp_path / "out")
        rebuilt = build_program(m, graph)
        x = np.random.default_rng(1).random(m.n_cols)
        a = res.best_program.run(x, A100)
        b = rebuilt.run(x, A100)
        np.testing.assert_allclose(a.y, b.y)
        assert b.gflops == pytest.approx(a.gflops, rel=1e-9)
