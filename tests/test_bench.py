"""Corpus evaluation pipeline tests: result store, runner, aggregation."""

import json

import numpy as np
import pytest

from repro.bench import (
    CorpusRunner,
    ResultStore,
    ResultStoreError,
    StoreVersionError,
    baseline_speedups,
    creativity_counts,
    pfs_speedups,
    render_corpus_report,
)
from repro.gpu import A100
from repro.search import SearchBudget
from repro.sparse import banded_matrix, lp_like_matrix, power_law_matrix

#: Small but real matrices — big enough that every baseline runs, small
#: enough that three searches stay in tier-1 time.
MATRICES = [
    banded_matrix(192, bandwidth=3, seed=1, name="bench-banded"),
    power_law_matrix(256, avg_degree=6, seed=2, name="bench-powerlaw"),
    lp_like_matrix(200, seed=3, name="bench-lp"),
]

BUDGET = SearchBudget(max_structures=8, coarse_evals_per_structure=6,
                      max_total_evals=24)


def run_corpus(store=None, matrices=None, jobs=1, seed=0):
    budget = SearchBudget(
        max_structures=BUDGET.max_structures,
        coarse_evals_per_structure=BUDGET.coarse_evals_per_structure,
        max_total_evals=BUDGET.max_total_evals,
        jobs=jobs,
    )
    with CorpusRunner(A100, budget=budget, seed=seed, store=store) as runner:
        return runner.run(MATRICES if matrices is None else matrices)


@pytest.fixture(scope="module")
def fresh_run():
    """One full in-memory corpus run shared by the read-only tests."""
    return run_corpus()


class TestResultStore:
    def test_in_memory_roundtrip(self):
        store = ResultStore()
        store.put("k", {"name": "m"})
        assert "k" in store and store.get("k") == {"name": "m"}
        assert len(store) == 1

    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "store.json"
        store = ResultStore(path)
        store.bind_config({"gpu": "A100"})
        store.put("a", {"name": "a", "v": 1})
        store.put("b", {"name": "b", "v": 2})
        again = ResultStore(path)
        assert len(again) == 2
        assert again.get("a") == {"name": "a", "v": 1}
        assert again.config == {"gpu": "A100"}

    def test_flush_is_atomic_valid_json(self, tmp_path):
        path = tmp_path / "store.json"
        store = ResultStore(path)
        for i in range(5):
            store.put(f"k{i}", {"v": i})
            data = json.loads(path.read_text())  # parseable after every put
            assert len(data["matrices"]) == i + 1
        assert not list(tmp_path.glob("*.tmp"))  # no temp-file litter

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "store.json"
        path.write_text("{not json")
        with pytest.raises(ResultStoreError, match="cannot load"):
            ResultStore(path)
        path.write_text('{"schema": 99, "matrices": {}}')
        with pytest.raises(StoreVersionError, match="schema"):
            ResultStore(path)

    def test_pre_pinning_store_raises_version_error(self, tmp_path):
        """A store written before run-config pinning (no schema marker)
        must fail as a clear version error, never a KeyError downstream."""
        path = tmp_path / "store.json"
        path.write_text('{"matrices": {"m:abc": {"name": "m"}}}')
        with pytest.raises(StoreVersionError, match="predates"):
            ResultStore(path)
        # the concrete type is ALSO a ResultStoreError, so pre-existing
        # broad `except ResultStoreError` handlers keep catching it
        with pytest.raises(ResultStoreError):
            ResultStore(path)

    def test_config_mismatch_rejected(self, tmp_path):
        path = tmp_path / "store.json"
        store = ResultStore(path)
        store.bind_config({"gpu": "A100", "evals": 24})
        store.flush()
        reopened = ResultStore(path)
        reopened.bind_config({"gpu": "A100", "evals": 24})  # same is fine
        with pytest.raises(ResultStoreError, match="different run"):
            reopened.bind_config({"gpu": "RTX2080", "evals": 24})


class TestRunnerResume:
    def test_interrupt_resume_identical_table(self, tmp_path):
        """write -> interrupt -> resume: the resumed run re-measures only
        the missing matrices and the final table is identical to an
        uninterrupted run."""
        path = tmp_path / "store.json"
        partial = run_corpus(store=ResultStore(path), matrices=MATRICES[:2])
        assert partial.stats.measured == 2

        resumed = run_corpus(store=ResultStore(path))  # all three
        assert resumed.stats.resumed == 2
        assert resumed.stats.measured == 1

        fresh = run_corpus()
        assert (render_corpus_report(resumed.records)
                == render_corpus_report(fresh.records))

    def test_resumed_run_measures_nothing(self, tmp_path):
        path = tmp_path / "store.json"
        first = run_corpus(store=ResultStore(path))
        again = run_corpus(store=ResultStore(path))
        assert again.stats.measured == 0
        assert again.stats.resumed == len(MATRICES)
        assert again.records == first.records

    def test_store_keys_content_addressed(self):
        renamed = banded_matrix(192, bandwidth=3, seed=1, name="other-name")
        same_name = banded_matrix(192, bandwidth=5, seed=7, name="bench-banded")
        key = CorpusRunner.record_key(MATRICES[0])
        assert CorpusRunner.record_key(renamed) != key  # name is part of it
        assert CorpusRunner.record_key(same_name) != key  # content too
        assert CorpusRunner.record_key(MATRICES[0]) == key

    def test_config_guard_stops_mixed_stores(self, tmp_path):
        path = tmp_path / "store.json"
        run_corpus(store=ResultStore(path), matrices=MATRICES[:1])
        with pytest.raises(ResultStoreError, match="different run"):
            run_corpus(store=ResultStore(path), matrices=MATRICES[:1], seed=99)

    def test_config_guard_pins_full_budget(self, tmp_path):
        """Any result-affecting budget field mismatch is rejected, not just
        the eval cap — otherwise a resume would silently mix searches run
        under different coarse/fine budgets."""
        path = tmp_path / "store.json"
        run_corpus(store=ResultStore(path), matrices=MATRICES[:1])
        other = SearchBudget(
            max_structures=BUDGET.max_structures,
            coarse_evals_per_structure=BUDGET.coarse_evals_per_structure + 2,
            max_total_evals=BUDGET.max_total_evals,
        )
        with CorpusRunner(A100, budget=other, store=ResultStore(path)) as runner:
            with pytest.raises(ResultStoreError, match="different run"):
                runner.run(MATRICES[:1])

    def test_record_independent_of_list_position(self):
        """A matrix's record depends on its content, not where it sits in
        the input list — so corpus shards tile the full run and resumes
        are order-insensitive."""
        full = run_corpus()
        alone = run_corpus(matrices=[MATRICES[2]])

        def stripped(record):
            out = json.loads(json.dumps(record))  # deep copy
            out["search"].pop("wall_time_s")  # the one wall-clock field
            return out

        assert stripped(alone.records[0]) == stripped(full.records[2])


class TestRunnerParallel:
    def test_jobs_do_not_change_the_tables(self, fresh_run):
        """Byte-identical corpus report for any worker count (the staged
        runtime's determinism guarantee, lifted to corpus level)."""
        pooled = run_corpus(jobs=4)
        assert (render_corpus_report(pooled.records)
                == render_corpus_report(fresh_run.records))

    def test_search_results_identical(self, fresh_run):
        pooled = run_corpus(jobs=2)
        for a, b in zip(fresh_run.records, pooled.records):
            assert a["search"]["best_gflops"] == b["search"]["best_gflops"]
            assert a["search"]["best_ops"] == b["search"]["best_ops"]
            assert a["baselines"] == b["baselines"]


class TestAggregation:
    def test_records_shape(self, fresh_run):
        assert len(fresh_run.records) == len(MATRICES)
        for record in fresh_run.records:
            assert record["baselines"]
            assert record["search"]["total_evaluations"] > 0
            for meas in record["baselines"].values():
                assert np.isfinite(meas["gflops"])
                assert np.isfinite(meas["time_s"])

    def test_no_non_finite_aggregates(self, fresh_run):
        """The speedup() inf bug, demonstrably fixed: inapplicable
        baselines (0 GFLOPS) are filtered, never turned into inf."""
        per_baseline = baseline_speedups(fresh_run.records)
        assert per_baseline
        for name, values in per_baseline.items():
            assert all(np.isfinite(v) and v > 0 for v in values), name
        # At least one baseline is inapplicable somewhere on this mix
        # (DIA on the power-law matrix), so filtering is actually exercised.
        n_searched = sum(
            1 for r in fresh_run.records if r["search"]["best_gflops"] > 0
        )
        assert any(len(v) < n_searched for v in per_baseline.values())

    def test_pfs_speedups_finite(self, fresh_run):
        values = pfs_speedups(fresh_run.records)
        assert values
        assert all(np.isfinite(v) for v in values)

    def test_report_renders_all_sections(self, fresh_run):
        text = render_corpus_report(fresh_run.records, title="Mini corpus")
        assert "Mini corpus" in text
        assert "geomean speedup" in text
        assert "Fig 10" in text
        assert "Creativity" in text
        assert "inf" not in text and "nan" not in text

    def test_report_from_reloaded_store(self, tmp_path):
        """The same table renders from the persisted JSON alone."""
        path = tmp_path / "store.json"
        live = run_corpus(store=ResultStore(path))
        reloaded = ResultStore(path)
        # Store order may differ from input order; compare per-baseline
        # aggregates, which are order-insensitive sets of measurements.
        assert (baseline_speedups(sorted(reloaded.records(), key=lambda r: r["name"]))
                == baseline_speedups(sorted(live.records, key=lambda r: r["name"])))

    def test_empty_report_rejected(self):
        with pytest.raises(ValueError):
            render_corpus_report([])

    def test_creativity_counts_sum(self, fresh_run):
        counts = creativity_counts(fresh_run.records)
        classified = (counts["machine-designed"] + counts["source-format"])
        assert classified == len(MATRICES)
        assert (counts["parameter-novel"] + counts["structure-novel"]
                == counts["machine-designed"])
