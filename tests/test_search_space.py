"""Structure sampler + parameter grid tests."""

import numpy as np
import pytest

from repro.core.graph import OperatorGraph
from repro.search.space import (
    StructureSampler,
    enumerate_param_grid,
    features_for,
    graph_with_params,
    param_slots,
    seed_structures,
)


class TestSampler:
    def test_samples_statically_valid(self):
        sampler = StructureSampler(seed=0)
        for _ in range(60):
            proposal = sampler.sample()
            proposal.graph.validate()  # must not raise

    def test_deterministic_by_seed(self):
        a = [StructureSampler(seed=5).sample().signature for _ in range(1)]
        b = [StructureSampler(seed=5).sample().signature for _ in range(1)]
        assert a == b

    def test_respects_ban_list(self):
        banned = {"BIN", "ROW_DIV", "WARP_SEG_RED", "BMT_NNZ_BLOCK",
                  "BMW_NNZ_BLOCK", "BMTB_NNZ_BLOCK", "WARP_BITMAP_RED",
                  "THREAD_BITMAP_RED"}
        sampler = StructureSampler(banned=banned, seed=1)
        for _ in range(80):
            ops = set(sampler.sample().graph.operator_names())
            assert not (ops & banned)

    def test_produces_variety(self):
        sampler = StructureSampler(seed=2)
        sigs = {sampler.sample().signature for _ in range(60)}
        assert len(sigs) > 10

    def test_locks_pin_total_reductions(self):
        sampler = StructureSampler(seed=3)
        for _ in range(100):
            proposal = sampler.sample()
            walk = list(proposal.graph.walk())
            ops = [n.op_name for n in walk]
            if "THREAD_TOTAL_RED" in ops and "BMT_ROW_BLOCK" in ops:
                idx = ops.index("BMT_ROW_BLOCK")
                assert proposal.locks.get((idx, "rows_per_block")) == 1


class TestSeeds:
    def test_archetypes_valid(self):
        for proposal in seed_structures():
            proposal.graph.validate()

    def test_covers_major_formats(self):
        names = [tuple(p.graph.operator_names()) for p in seed_structures()]
        flat = {op for sig in names for op in sig}
        assert "BMW_NNZ_BLOCK" in flat   # CSR5 lineage
        assert "BMTB_NNZ_BLOCK" in flat  # Merge lineage
        assert "SORT" in flat            # SELL lineage
        assert len(names) >= 8

    def test_ban_filters_seeds(self):
        banned = {"BMT_NNZ_BLOCK", "BMW_NNZ_BLOCK", "BMTB_NNZ_BLOCK"}
        seeds = seed_structures(banned)
        for proposal in seeds:
            assert not (set(proposal.graph.operator_names()) & banned)

    def test_seed_locks_applied(self):
        for proposal in seed_structures():
            ops = proposal.graph.operator_names()
            if ops == ["COMPRESS", "BMT_ROW_BLOCK", "SET_RESOURCES",
                       "THREAD_TOTAL_RED", "GMEM_DIRECT_STORE"]:
                assert (1, "rows_per_block") in proposal.locks
                return
        pytest.fail("csr-scalar archetype missing")


class TestParamGrid:
    def graph(self):
        return OperatorGraph.from_names(
            ["COMPRESS", "BMTB_ROW_BLOCK", "SET_RESOURCES",
             "SHMEM_OFFSET_RED", "GMEM_DIRECT_STORE"]
        )

    def test_slots_enumerated(self):
        slots = param_slots(self.graph())
        names = {(i, n) for (i, n), _, _ in slots}
        assert (1, "rows_per_block") in names
        assert (2, "threads_per_block") in names

    def test_locks_removed_from_slots(self):
        slots = param_slots(self.graph(), locks={(1, "rows_per_block"): 64})
        names = {key for key, _, _ in slots}
        assert (1, "rows_per_block") not in names

    def test_full_product_when_small(self):
        grid = enumerate_param_grid(self.graph(), cap=1000)
        slots = param_slots(self.graph())
        expected = 1
        for _, coarse, _ in slots:
            expected *= len(coarse)
        assert len(grid) == expected

    def test_capped_sampling(self):
        grid = enumerate_param_grid(self.graph(), level="fine", cap=10)
        assert len(grid) == 10
        assert len({tuple(sorted(a.items())) for a in grid}) == 10  # distinct

    def test_default_always_first(self):
        grid = enumerate_param_grid(self.graph(), level="fine", cap=5)
        slots = param_slots(self.graph())
        for (key, coarse, fine) in slots:
            assert grid[0][key] == fine[0]

    def test_invalid_level(self):
        with pytest.raises(ValueError):
            enumerate_param_grid(self.graph(), level="medium")

    def test_graph_with_params_applies(self):
        g = self.graph()
        new = graph_with_params(g, {(1, "rows_per_block"): 256})
        assert list(new.walk())[1].params["rows_per_block"] == 256
        # original untouched
        assert list(g.walk())[1].params["rows_per_block"] != 256

    def test_features_numeric_log2(self):
        slots = param_slots(self.graph())
        assignment = {key: coarse[0] for key, coarse, _ in slots}
        feats = features_for(slots, assignment)
        assert feats.shape == (len(slots),)
        assert np.isfinite(feats).all()
        # numeric params enter as log2
        for j, (key, coarse, _) in enumerate(slots):
            if key[1] == "rows_per_block":
                assert feats[j] == pytest.approx(np.log2(coarse[0]))
