"""CLI tests (the paper's artifact-usage contract)."""

import json

import pytest

from repro.cli import main
from repro.sparse import write_matrix_market


@pytest.fixture
def mtx_file(tmp_path, small_regular):
    path = tmp_path / "m.mtx"
    write_matrix_market(small_regular, path)
    return str(path)


class TestStats:
    def test_named_matrix(self, capsys):
        assert main(["stats", "@scfxm1-2r"]) == 0
        out = capsys.readouterr().out
        assert "row variance" in out
        assert "irregular" in out

    def test_file(self, mtx_file, capsys):
        assert main(["stats", mtx_file]) == 0
        assert "nnz" in capsys.readouterr().out


class TestOperatorsAndMatrices:
    def test_operators_listing(self, capsys):
        assert main(["operators"]) == 0
        out = capsys.readouterr().out
        for name in ("COMPRESS", "BMT_ROW_BLOCK", "WARP_SEG_RED", "HYB_DECOMP"):
            assert name in out

    def test_matrices_listing(self, capsys):
        assert main(["matrices"]) == 0
        out = capsys.readouterr().out
        assert "scfxm1-2r" in out
        assert "GL7d19" in out


class TestBaselines:
    def test_runs_all(self, mtx_file, capsys):
        assert main(["baselines", mtx_file, "--gpu", "RTX2080"]) == 0
        out = capsys.readouterr().out
        for fmt in ("CSR5", "Merge", "HYB", "TACO"):
            assert fmt in out


class TestSearch:
    def test_search_and_export(self, mtx_file, tmp_path, capsys):
        out_dir = tmp_path / "artifact"
        code = main([
            "search", mtx_file, "--evals", "24", "--seed", "1",
            "--out", str(out_dir), "--compare-pfs",
        ])
        assert code == 0
        text = capsys.readouterr().out
        assert "winning Operator Graph" in text
        assert "GFLOPS" in text
        assert "speedup" in text
        manifest = json.loads((out_dir / "manifest.json").read_text())
        assert manifest["kernels"]

    def test_search_prints_kernel_without_out(self, mtx_file, capsys):
        assert main(["search", mtx_file, "--evals", "16"]) == 0
        assert "__global__" in capsys.readouterr().out

    def test_extensions_flag(self, capsys):
        code = main([
            "search", "@GL7d19", "--evals", "16", "--extensions",
        ])
        assert code == 0

    def test_unknown_gpu_fails(self, mtx_file):
        with pytest.raises(KeyError):
            main(["search", mtx_file, "--gpu", "H100", "--evals", "4"])

    def test_jobs_flag(self, mtx_file, capsys):
        assert main(["search", mtx_file, "--evals", "16", "--jobs", "2"]) == 0
        assert "design cache" in capsys.readouterr().out

    def test_multi_matrix_summary(self, mtx_file, capsys):
        code = main([
            "search", mtx_file, "@scfxm1-2r", "--evals", "16", "--jobs", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Search summary" in out
        assert "cache hit" in out
        assert "scfxm1-2r" in out

    def test_no_valid_candidate_reports_cleanly(self, mtx_file, capsys):
        assert main(["search", mtx_file, "--evals", "0"]) == 1
        assert "no valid candidate" in capsys.readouterr().out

class TestBench:
    """Corpus-pipeline smoke tests on two tiny generated matrices (the
    full corpus benchmark lives behind the `slow` marker)."""

    @pytest.fixture
    def two_matrices(self, tmp_path, small_regular, small_lp):
        paths = []
        for matrix, fname in ((small_regular, "a.mtx"), (small_lp, "b.mtx")):
            path = tmp_path / fname
            write_matrix_market(matrix, path)
            paths.append(str(path))
        return paths

    def test_bench_smoke(self, two_matrices, tmp_path, capsys):
        store = tmp_path / "results.json"
        code = main([
            "bench", *two_matrices, "--evals", "12", "--jobs", "2",
            "--resume", str(store),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "Geomean speedup" in out
        assert "Fig 10" in out
        assert "Creativity" in out
        assert "2 measured, 0 resumed" in out
        assert "inf" not in out and "nan" not in out
        assert store.exists()

    def test_bench_resumes_from_store(self, two_matrices, tmp_path, capsys):
        store = tmp_path / "results.json"
        args = ["bench", *two_matrices, "--evals", "12", "--resume", str(store)]
        assert main(args) == 0
        capsys.readouterr()
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "0 measured, 2 resumed" in out

    def test_bench_corpus_slice(self, capsys):
        assert main(["bench", "@corpus:2", "--evals", "8"]) == 0
        out = capsys.readouterr().out
        assert "2 matrices" in out

    def test_bench_bad_corpus_slice(self):
        with pytest.raises(SystemExit):
            main(["bench", "@corpus:zzz", "--evals", "8"])


class TestDesignStoreFlag:
    def test_search_store_warm_starts_second_run(self, mtx_file, tmp_path,
                                                 capsys):
        store = str(tmp_path / "designs")
        args = ["search", mtx_file, "--evals", "16", "--store", store]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "0 designs loaded" in first
        assert main(args) == 0  # fresh engine, same store path
        second = capsys.readouterr().out
        assert "0 designer runs" in second
        assert "/ 0 designed" in second

    def test_bench_store_populates(self, mtx_file, tmp_path, capsys):
        store = str(tmp_path / "designs")
        code = main(["bench", mtx_file, "--evals", "12", "--store", store])
        assert code == 0
        out = capsys.readouterr().out
        assert "design store:" in out
        assert "results written" in out


class TestServe:
    def test_serve_search_then_hit(self, mtx_file, tmp_path, capsys):
        store = str(tmp_path / "designs")
        args = ["serve", mtx_file, "--store", store, "--evals", "24"]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert "search" in first
        assert main(args) == 0
        second = capsys.readouterr().out
        assert "store" in second
        assert "1 exact" in second

    def test_serve_exports_artifact(self, mtx_file, tmp_path, capsys):
        store = str(tmp_path / "designs")
        out_dir = tmp_path / "served"
        code = main([
            "serve", mtx_file, "--store", store, "--evals", "24",
            "--out", str(out_dir),
        ])
        assert code == 0
        assert "artifact exported" in capsys.readouterr().out
        manifests = list(out_dir.glob("*/manifest.json"))
        assert len(manifests) == 1
        manifest = json.loads(manifests[0].read_text())
        assert manifest["kernels"]


class TestStoreCommand:
    @pytest.fixture
    def populated(self, mtx_file, tmp_path, capsys):
        store = str(tmp_path / "designs")
        main(["search", mtx_file, "--evals", "16", "--store", store])
        capsys.readouterr()
        return store

    def test_ls(self, populated, capsys):
        assert main(["store", "ls", populated]) == 0
        out = capsys.readouterr().out
        assert "design" in out and "result" in out and "ok" in out

    def test_verify_clean_and_corrupt(self, populated, tmp_path, capsys):
        assert main(["store", "verify", populated]) == 0
        capsys.readouterr()
        entry = sorted((tmp_path / "designs" / "designs").glob("*.json"))[0]
        entry.write_text(entry.read_text()[:30])
        assert main(["store", "verify", populated]) == 1
        assert "CORRUPT" in capsys.readouterr().out

    def test_gc(self, populated, capsys):
        assert main(["store", "gc", populated]) == 0
        assert "entries removed" in capsys.readouterr().out

    def test_missing_store_reports_cleanly(self, tmp_path, capsys):
        assert main(["store", "ls", str(tmp_path / "nope")]) == 2
        assert "error:" in capsys.readouterr().out


class TestSearchMultiExport:
    def test_multi_matrix_export(self, mtx_file, tmp_path, capsys):
        out_dir = tmp_path / "artifacts"
        code = main([
            "search", mtx_file, "@scfxm1-2r", "--evals", "12",
            "--out", str(out_dir),
        ])
        assert code == 0
        exported = list(out_dir.glob("*/manifest.json"))
        assert len(exported) == 2
