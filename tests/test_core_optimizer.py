"""Model-Driven Format Compression tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.optimizer import CompressionModel, ModelDrivenCompressor


@pytest.fixture
def compressor():
    return ModelDrivenCompressor()


class TestLinear:
    def test_fits_arange(self, compressor):
        arr = np.arange(0, 640, 64)
        model = compressor.fit(arr)
        assert model is not None and model.kind == "linear"
        np.testing.assert_array_equal(model.predict(np.arange(arr.size)), arr)
        assert model.stored_bytes == 0

    def test_fits_constant(self, compressor):
        arr = np.full(50, 7)
        model = compressor.fit(arr)
        assert model is not None
        np.testing.assert_array_equal(model.predict(np.arange(50)), arr)

    def test_tolerates_few_exceptions(self, compressor):
        arr = np.arange(0, 6400, 64)
        arr[3] = 999  # single outlier
        model = compressor.fit(arr)
        assert model is not None
        assert len(model.exceptions) == 1
        np.testing.assert_array_equal(model.predict(np.arange(arr.size)), arr)
        assert model.stored_bytes == 8

    def test_expression(self, compressor):
        model = compressor.fit(np.arange(0, 320, 32))
        assert model.expression("bid") == "0 + 32 * bid"


class TestStepAndPeriodic:
    def test_fits_step(self, compressor):
        arr = np.repeat(np.arange(10) * 5, 4)  # 0,0,0,0,5,5,5,5,...
        model = compressor.fit(arr)
        assert model is not None
        np.testing.assert_array_equal(model.predict(np.arange(arr.size)), arr)

    def test_fits_periodic_linear(self, compressor):
        # a[i] = 2*(i % 8) + 100*(i // 8): per-block offsets pattern.
        idx = np.arange(64)
        arr = 2 * (idx % 8) + 100 * (idx // 8)
        model = compressor.fit(arr)
        assert model is not None
        assert model.kind in ("step", "periodic_linear")
        np.testing.assert_array_equal(model.predict(idx), arr)

    def test_expression_contains_period(self, compressor):
        idx = np.arange(64)
        arr = 3 * (idx % 4) + 50 * (idx // 4)
        model = compressor.fit(arr)
        expr = model.expression("i")
        assert "%" in expr or "/" in expr


class TestRefusal:
    def test_random_array_not_fitted(self, compressor):
        rng = np.random.default_rng(0)
        arr = rng.integers(0, 10_000, size=500)
        assert compressor.fit(arr) is None

    def test_float_array_not_fitted(self, compressor):
        assert compressor.fit(np.linspace(0, 1, 10)) is None

    def test_empty_array_trivially_fitted(self, compressor):
        model = compressor.fit(np.array([], dtype=np.int64))
        assert model is not None
        assert model.stored_bytes == 0

    def test_permutation_not_fitted(self, compressor):
        rng = np.random.default_rng(1)
        arr = rng.permutation(200)
        assert compressor.fit(arr) is None


class TestExtensibility:
    def test_user_hypothesis(self):
        compressor = ModelDrivenCompressor()

        def fit_squares(arr, budget):
            idx = np.arange(arr.size)
            if np.array_equal(arr, idx**2):
                # reuse the linear container shape for the test
                return CompressionModel("linear", (0.0, 0.0), 1, tuple(
                    (int(i), int(v)) for i, v in enumerate(arr)
                ), arr.size)
            return None

        compressor.register("squares", fit_squares)
        arr = np.arange(5) ** 2
        model = compressor.fit(arr)
        assert model is not None
        np.testing.assert_array_equal(model.predict(np.arange(5)), arr)


class TestExactnessGuarantee:
    @given(
        start=st.integers(-1000, 1000),
        slope=st.integers(-64, 64),
        n=st.integers(2, 200),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_linear_always_exact(self, start, slope, n):
        arr = start + slope * np.arange(n)
        model = ModelDrivenCompressor().fit(arr)
        assert model is not None
        np.testing.assert_array_equal(model.predict(np.arange(n)), arr)

    @given(st.lists(st.integers(0, 1_000_000), min_size=1, max_size=100))
    @settings(max_examples=60, deadline=None)
    def test_property_accepted_models_are_exact(self, values):
        """Whatever the fitter accepts must reproduce the array exactly —
        'any errors in the model would cause incorrect SpMV' (paper §V-D)."""
        arr = np.asarray(values, dtype=np.int64)
        model = ModelDrivenCompressor().fit(arr)
        if model is not None:
            np.testing.assert_array_equal(model.predict(np.arange(arr.size)), arr)
