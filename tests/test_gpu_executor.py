"""Executor tests: functional correctness and reduction-chain semantics."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.arch import A100
from repro.gpu.executor import (
    ExecutionPlan,
    PlanValidationError,
    ReductionStep,
    execute,
    plan_cost_inputs,
    validate_plan,
)
from repro.sparse.matrix import SparseMatrix


def row_per_thread_plan(matrix: SparseMatrix, steps=None, tpb=128) -> ExecutionPlan:
    """CSR-scalar-shaped plan used across the tests."""
    steps = steps or (
        ReductionStep("thread", "THREAD_TOTAL_RED"),
        ReductionStep("global", "GMEM_DIRECT_STORE"),
    )
    return ExecutionPlan(
        n_rows=matrix.n_rows,
        n_cols=matrix.n_cols,
        useful_nnz=matrix.nnz,
        values=matrix.vals.copy(),
        col_indices=matrix.cols.copy(),
        out_rows=matrix.rows.copy(),
        thread_of_nz=matrix.rows.copy(),
        n_threads=matrix.n_rows,
        threads_per_block=tpb,
        reduction_steps=tuple(steps),
    )


class TestReductionStep:
    def test_valid_steps(self):
        ReductionStep("warp", "WARP_SEG_RED")
        ReductionStep("global", "GMEM_ATOM_RED")

    def test_unknown_level(self):
        with pytest.raises(ValueError):
            ReductionStep("grid", "GMEM_ATOM_RED")

    def test_strategy_level_mismatch(self):
        with pytest.raises(ValueError):
            ReductionStep("thread", "WARP_TOTAL_RED")


class TestPlanConstruction:
    def test_mismatched_arrays_rejected(self, small_regular):
        plan = row_per_thread_plan(small_regular)
        with pytest.raises(ValueError):
            ExecutionPlan(
                n_rows=plan.n_rows,
                n_cols=plan.n_cols,
                useful_nnz=plan.useful_nnz,
                values=plan.values,
                col_indices=plan.col_indices[:-1],
                out_rows=plan.out_rows,
                thread_of_nz=plan.thread_of_nz,
                n_threads=plan.n_threads,
                threads_per_block=128,
                reduction_steps=plan.reduction_steps,
            )

    def test_chain_must_end_global(self, small_regular):
        with pytest.raises(ValueError):
            row_per_thread_plan(
                small_regular, steps=(ReductionStep("thread", "THREAD_TOTAL_RED"),)
            )

    def test_geometry(self, small_regular):
        plan = row_per_thread_plan(small_regular, tpb=64)
        assert plan.n_warps == (plan.n_threads + 31) // 32
        assert plan.n_blocks == (plan.n_threads + 63) // 64


class TestFunctionalExecution:
    def test_correct_result(self, any_small_matrix, x_for):
        plan = row_per_thread_plan(any_small_matrix)
        x = x_for(any_small_matrix)
        res = execute(plan, x, A100)
        np.testing.assert_allclose(
            res.y, any_small_matrix.spmv_reference(x), rtol=1e-12
        )

    def test_padding_ignored(self, tiny_matrix):
        # Append padding elements: value 0, row/col of the last element.
        pad = 3
        values = np.r_[tiny_matrix.vals, np.zeros(pad)]
        cols = np.r_[tiny_matrix.cols, np.zeros(pad, dtype=np.int64)]
        out_rows = np.r_[tiny_matrix.rows, np.full(pad, -1, dtype=np.int64)]
        threads = np.r_[tiny_matrix.rows, np.zeros(pad, dtype=np.int64)]
        plan = ExecutionPlan(
            n_rows=4, n_cols=4, useful_nnz=tiny_matrix.nnz,
            values=values, col_indices=cols, out_rows=out_rows,
            thread_of_nz=threads, n_threads=4, threads_per_block=32,
            reduction_steps=(ReductionStep("global", "GMEM_ATOM_RED"),),
        )
        x = np.arange(4, dtype=np.float64)
        res = execute(plan, x, A100)
        np.testing.assert_allclose(res.y, tiny_matrix.spmv_reference(x))

    def test_x_shape_checked(self, tiny_matrix):
        plan = row_per_thread_plan(tiny_matrix)
        with pytest.raises(ValueError):
            execute(plan, np.zeros(7), A100)

    def test_result_carries_cost(self, small_regular, x_for):
        plan = row_per_thread_plan(small_regular)
        res = execute(plan, x_for(small_regular), A100)
        assert res.time_s > 0
        assert res.gflops > 0
        assert res.inputs.stored_elements == small_regular.nnz


class TestReductionSemantics:
    def test_thread_total_requires_single_row(self, tiny_matrix):
        # Assign two rows to one thread -> THREAD_TOTAL_RED invalid.
        plan = row_per_thread_plan(tiny_matrix)
        plan.thread_of_nz = np.zeros(tiny_matrix.nnz, dtype=np.int64)
        with pytest.raises(PlanValidationError, match="THREAD_TOTAL_RED"):
            validate_plan(plan)

    def test_warp_total_requires_single_row_per_warp(self, tiny_matrix):
        plan = row_per_thread_plan(
            tiny_matrix,
            steps=(
                ReductionStep("warp", "WARP_TOTAL_RED"),
                ReductionStep("global", "GMEM_DIRECT_STORE"),
            ),
        )
        # 4 rows across threads 0-3 share warp 0 -> invalid.
        with pytest.raises(PlanValidationError, match="WARP_TOTAL_RED"):
            validate_plan(plan)

    def test_warp_seg_handles_multi_row_warps(self, tiny_matrix):
        plan = row_per_thread_plan(
            tiny_matrix,
            steps=(
                ReductionStep("warp", "WARP_SEG_RED"),
                ReductionStep("global", "GMEM_DIRECT_STORE"),
            ),
        )
        validate_plan(plan)  # must not raise

    def test_direct_store_requires_single_writer(self, tiny_matrix):
        # Split row 0's two elements across two threads without any merging
        # reduction: two final partials hit row 0.
        plan = row_per_thread_plan(
            tiny_matrix,
            steps=(ReductionStep("global", "GMEM_DIRECT_STORE"),),
        )
        plan.thread_of_nz = np.arange(tiny_matrix.nnz, dtype=np.int64)
        plan.n_threads = tiny_matrix.nnz
        with pytest.raises(PlanValidationError, match="GMEM_DIRECT_STORE"):
            validate_plan(plan)

    def test_atomic_accepts_multi_writer(self, tiny_matrix):
        plan = row_per_thread_plan(
            tiny_matrix, steps=(ReductionStep("global", "GMEM_ATOM_RED"),)
        )
        plan.thread_of_nz = np.arange(tiny_matrix.nnz, dtype=np.int64)
        plan.n_threads = tiny_matrix.nnz
        validate_plan(plan)

    def test_shmem_total_requires_single_row_block(self, tiny_matrix):
        plan = row_per_thread_plan(
            tiny_matrix,
            steps=(
                ReductionStep("block", "SHMEM_TOTAL_RED"),
                ReductionStep("global", "GMEM_DIRECT_STORE"),
            ),
            tpb=32,
        )
        with pytest.raises(PlanValidationError, match="SHMEM_TOTAL_RED"):
            validate_plan(plan)

    def test_block_after_warp_regroups_correctly(self, small_regular, x_for):
        """warp then block steps: granularity tracking must not corrupt."""
        m = small_regular
        plan = ExecutionPlan(
            n_rows=m.n_rows, n_cols=m.n_cols, useful_nnz=m.nnz,
            values=m.vals.copy(), col_indices=m.cols.copy(),
            out_rows=m.rows.copy(), thread_of_nz=m.rows.copy(),
            n_threads=m.n_rows, threads_per_block=128,
            reduction_steps=(
                ReductionStep("thread", "THREAD_TOTAL_RED"),
                ReductionStep("warp", "WARP_BITMAP_RED"),
                ReductionStep("block", "SHMEM_OFFSET_RED"),
                ReductionStep("global", "GMEM_DIRECT_STORE"),
            ),
        )
        x = x_for(m)
        res = execute(plan, x, A100)
        np.testing.assert_allclose(res.y, m.spmv_reference(x), rtol=1e-12)


class TestCostInputs:
    def test_atomics_counted(self, tiny_matrix):
        plan = row_per_thread_plan(
            tiny_matrix, steps=(ReductionStep("global", "GMEM_ATOM_RED"),)
        )
        inputs = plan_cost_inputs(plan, A100)
        # No merging reduction before global: every element is flushed
        # individually (pure COO atomic kernel semantics).
        assert inputs.atomic_ops == tiny_matrix.nnz
        assert inputs.max_atomics_per_row == 2  # row 0 has two elements

    def test_interleaved_coalescing(self, small_regular):
        chunked = row_per_thread_plan(small_regular)
        interleaved = row_per_thread_plan(small_regular)
        interleaved.interleaved = True
        ci = plan_cost_inputs(chunked, A100)
        ii = plan_cost_inputs(interleaved, A100)
        assert ii.coalescing == 1.0
        assert ci.coalescing < 1.0  # avg 7 nnz per thread, strided

    def test_storage_run_length_override(self, small_regular):
        plan = row_per_thread_plan(small_regular)
        plan.storage_run_length = 1.0
        inputs = plan_cost_inputs(plan, A100)
        assert inputs.coalescing == 1.0

    def test_divergence_from_imbalanced_threads(self, small_irregular):
        plan = row_per_thread_plan(small_irregular)
        inputs = plan_cost_inputs(plan, A100)
        assert inputs.warp_lockstep_elements > inputs.stored_elements


# ---------------------------------------------------------------------------
# Property-based: arbitrary work assignments stay functionally correct
# ---------------------------------------------------------------------------

@given(
    n_rows=st.integers(2, 12),
    n_cols=st.integers(2, 12),
    nnz=st.integers(1, 40),
    n_threads=st.integers(1, 16),
    seed=st.integers(0, 1000),
)
@settings(max_examples=60, deadline=None)
def test_property_any_assignment_correct(n_rows, n_cols, nnz, n_threads, seed):
    rng = np.random.default_rng(seed)
    m = SparseMatrix(
        n_rows,
        n_cols,
        rng.integers(0, n_rows, nnz),
        rng.integers(0, n_cols, nnz),
        rng.random(nnz) + 0.5,
    )
    threads = np.sort(rng.integers(0, n_threads, m.nnz))
    plan = ExecutionPlan(
        n_rows=n_rows, n_cols=n_cols, useful_nnz=m.nnz,
        values=m.vals.copy(), col_indices=m.cols.copy(),
        out_rows=m.rows.copy(), thread_of_nz=threads,
        n_threads=n_threads, threads_per_block=32,
        reduction_steps=(ReductionStep("global", "GMEM_ATOM_RED"),),
    )
    x = rng.random(n_cols)
    res = execute(plan, x, A100)
    np.testing.assert_allclose(res.y, m.spmv_reference(x), rtol=1e-10, atol=1e-12)
