"""Converting-stage operator tests."""

import numpy as np
import pytest

from repro.core.metadata import MatrixMetadataSet
from repro.core.operators import OperatorError, get_operator
from repro.sparse.matrix import SparseMatrix


def meta_for(matrix):
    return MatrixMetadataSet.from_matrix(matrix)


def apply_op(meta, name, **params):
    op = get_operator(name)
    resolved = op.resolve_params(params)
    op.check(meta, resolved)
    op.apply(meta, resolved)
    meta.check_invariants()
    return meta


class TestCompress:
    def test_marks_compressed(self, tiny_matrix):
        meta = apply_op(meta_for(tiny_matrix), "COMPRESS")
        assert meta.compressed

    def test_drops_explicit_zeros(self):
        m = SparseMatrix(2, 2, [0, 0, 1], [0, 1, 1], [1.0, 0.0, 2.0])
        meta = apply_op(meta_for(m), "COMPRESS")
        assert meta.stored_elements == 2
        assert meta.useful_nnz == 2

    def test_double_compress_rejected(self, tiny_matrix):
        meta = apply_op(meta_for(tiny_matrix), "COMPRESS")
        op = get_operator("COMPRESS")
        with pytest.raises(OperatorError):
            op.check(meta, {})

    def test_row_major_order(self, small_irregular):
        meta = apply_op(meta_for(small_irregular), "COMPRESS")
        keys = meta.elem_row * small_irregular.n_cols + meta.elem_col
        assert (np.diff(keys) > 0).all()


class TestSort:
    def test_rows_by_decreasing_length(self, small_irregular):
        meta = apply_op(meta_for(small_irregular), "SORT")
        lengths = np.bincount(meta.elem_row, minlength=meta.n_rows)
        assert (np.diff(lengths) <= 0).all()

    def test_origin_rows_invertible(self, small_irregular, x_for):
        meta = apply_op(meta_for(small_irregular), "SORT")
        # Reconstruct SpMV through the permutation: must equal reference.
        x = x_for(small_irregular)
        products = meta.elem_val * x[meta.elem_col]
        y = np.zeros(small_irregular.n_rows)
        np.add.at(y, meta.origin_rows[meta.elem_row], products)
        np.testing.assert_allclose(y, small_irregular.spmv_reference(x))

    def test_stable_for_ties(self):
        m = SparseMatrix(3, 3, [0, 1, 2], [0, 1, 2])
        meta = apply_op(meta_for(m), "SORT")
        np.testing.assert_array_equal(meta.origin_rows, [0, 1, 2])


class TestSortSub:
    def test_sorts_within_chunks_only(self, small_irregular):
        chunk = 64
        meta = apply_op(meta_for(small_irregular), "SORT_SUB", chunk_rows=chunk)
        lengths = np.bincount(meta.elem_row, minlength=meta.n_rows)
        for start in range(0, meta.n_rows, chunk):
            part = lengths[start : start + chunk]
            assert (np.diff(part) <= 0).all()
        # Rows stay within their chunk.
        for start in range(0, meta.n_rows, chunk):
            stop = min(start + chunk, meta.n_rows)
            origins = meta.origin_rows[start:stop]
            assert origins.min() >= start and origins.max() < stop

    def test_invalid_chunk(self, tiny_matrix):
        op = get_operator("SORT_SUB")
        meta = meta_for(tiny_matrix)
        with pytest.raises(OperatorError):
            op.apply(meta, {"chunk_rows": 0})


class TestRowDiv:
    def test_equal_partition(self, small_irregular):
        op = get_operator("ROW_DIV")
        meta = meta_for(small_irregular)
        children = op.partition(meta, op.resolve_params({"strategy": "equal", "parts": 4}))
        assert len(children) == 4
        assert sum(c.useful_nnz for c in children) == small_irregular.nnz
        # Origin rows partition the original row set.
        seen = np.concatenate([c.origin_rows for c in children])
        np.testing.assert_array_equal(np.sort(seen), np.arange(small_irregular.n_rows))

    def test_len_mutation_on_sorted(self):
        m = SparseMatrix(
            6, 40,
            [0]*30 + [1]*28 + [2, 3, 4, 5],
            list(range(30)) + list(range(28)) + [0, 1, 2, 3],
        )
        op = get_operator("ROW_DIV")
        meta = meta_for(m)
        children = op.partition(
            meta, op.resolve_params({"strategy": "len_mutation", "mutation_factor": 4.0})
        )
        assert len(children) >= 2

    def test_no_mutation_single_child(self, small_regular):
        op = get_operator("ROW_DIV")
        meta = meta_for(small_regular)
        children = op.partition(
            meta, op.resolve_params({"strategy": "len_mutation", "mutation_factor": 1e9})
        )
        assert len(children) == 1

    def test_apply_raises(self, tiny_matrix):
        op = get_operator("ROW_DIV")
        with pytest.raises(OperatorError):
            op.apply(meta_for(tiny_matrix), op.default_params())


class TestColDiv:
    def test_partition_preserves_rows(self, small_lp):
        op = get_operator("COL_DIV")
        meta = meta_for(small_lp)
        children = op.partition(meta, op.resolve_params({"parts": 3}))
        assert all(c.n_rows == small_lp.n_rows for c in children)
        assert sum(c.useful_nnz for c in children) == small_lp.nnz

    def test_columns_disjoint(self, small_lp):
        op = get_operator("COL_DIV")
        meta = meta_for(small_lp)
        children = op.partition(meta, op.resolve_params({"parts": 2}))
        c0 = set(children[0].elem_col.tolist())
        c1 = set(children[1].elem_col.tolist())
        assert not (c0 & c1)


class TestBin:
    def test_bins_by_length(self, small_irregular):
        op = get_operator("BIN")
        meta = meta_for(small_irregular)
        children = op.partition(meta, op.resolve_params({"n_bins": 2}))
        assert 1 <= len(children) <= 2
        assert sum(c.useful_nnz for c in children) == small_irregular.nnz
        if len(children) == 2:
            max_short = np.bincount(children[0].elem_row).max()
            min_long = np.bincount(children[1].elem_row).min()
            assert max_short <= min_long * 2  # bins ordered by length

    def test_uniform_matrix_single_bin(self, small_regular):
        op = get_operator("BIN")
        meta = meta_for(small_regular)
        children = op.partition(meta, op.resolve_params({"n_bins": 3}))
        # Banded rows are nearly equal-length; all land in one bin.
        assert len(children) <= 2
