"""Mapping-stage operator tests: blocking, padding, nesting, dependencies."""

import numpy as np
import pytest

from repro.core.metadata import MatrixMetadataSet
from repro.core.operators import OperatorError, get_operator


def prepared(matrix, *ops_with_params):
    """Metadata after COMPRESS and the given (name, params) operators."""
    meta = MatrixMetadataSet.from_matrix(matrix)
    chain = [("COMPRESS", {})] + list(ops_with_params)
    for name, params in chain:
        op = get_operator(name)
        resolved = op.resolve_params(params)
        op.check(meta, resolved)
        op.apply(meta, resolved)
        meta.check_invariants()
    return meta


class TestRowBlocks:
    def test_bmtb_row_block(self, small_regular):
        meta = prepared(small_regular, ("BMTB_ROW_BLOCK", {"rows_per_block": 32}))
        blocks = meta.blocks_of("bmtb")
        assert meta.n_blocks("bmtb") == small_regular.n_rows // 32
        # every block covers exactly 32 rows
        for b in range(meta.n_blocks("bmtb")):
            rows = np.unique(meta.elem_row[blocks == b])
            assert rows.size <= 32
            assert rows.max() - rows.min() < 32
        assert "bmtb_nz_offsets" in meta.format_arrays
        assert "bmtb_row_offsets" in meta.format_arrays

    def test_requires_compress(self, small_regular):
        meta = MatrixMetadataSet.from_matrix(small_regular)
        op = get_operator("BMTB_ROW_BLOCK")
        with pytest.raises(OperatorError):
            op.check(meta, op.default_params())

    def test_nesting_bmt_in_bmtb(self, small_regular):
        meta = prepared(
            small_regular,
            ("BMTB_ROW_BLOCK", {"rows_per_block": 16}),
            ("BMT_ROW_BLOCK", {"rows_per_block": 1}),
        )
        assert meta.n_blocks("bmt") == small_regular.n_rows
        meta.check_invariants()  # nesting invariant

    def test_coarse_after_fine_rejected(self, small_regular):
        """The paper's Fig 5 dependency example."""
        meta = prepared(small_regular, ("BMT_ROW_BLOCK", {"rows_per_block": 1}))
        op = get_operator("BMTB_ROW_BLOCK")
        with pytest.raises(OperatorError, match="dependency"):
            op.check(meta, op.default_params())

    def test_duplicate_level_rejected(self, small_regular):
        meta = prepared(small_regular, ("BMT_ROW_BLOCK", {"rows_per_block": 1}))
        op = get_operator("BMT_ROW_BLOCK")
        with pytest.raises(OperatorError):
            op.check(meta, op.default_params())


class TestNnzBlocks:
    def test_even_chunks(self, small_irregular):
        meta = prepared(small_irregular, ("BMT_NNZ_BLOCK", {"nnz_per_block": 8}))
        counts = np.bincount(meta.blocks_of("bmt"))
        assert counts.max() <= 8
        assert (counts[:-1] == 8).all()

    def test_chunks_respect_parent(self, small_irregular):
        meta = prepared(
            small_irregular,
            ("BMTB_NNZ_BLOCK", {"nnz_per_block": 100}),
            ("BMT_NNZ_BLOCK", {"nnz_per_block": 7}),
        )
        meta.check_invariants()  # bmt chunks nest inside bmtb chunks

    def test_records_row_indices(self, small_irregular):
        meta = prepared(small_irregular, ("BMT_NNZ_BLOCK", {"nnz_per_block": 4}))
        assert "elem_row_indices" in meta.format_arrays


class TestColBlocks:
    def test_bmt_col_block_groups_columns(self, small_lp):
        meta = prepared(small_lp, ("BMT_COL_BLOCK", {"cols_per_block": 64}))
        blocks = meta.blocks_of("bmt")
        for b in np.unique(blocks)[:10]:
            cols = meta.elem_col[blocks == b]
            assert cols.max() // 64 == cols.min() // 64
        assert "bmt_col_bases" in meta.format_arrays

    def test_col_block_within_bmtb(self, small_lp):
        meta = prepared(
            small_lp,
            ("BMTB_ROW_BLOCK", {"rows_per_block": 64}),
            ("BMT_COL_BLOCK", {"cols_per_block": 128}),
        )
        meta.check_invariants()


class TestPadding:
    def test_pad_multiple(self, small_irregular):
        meta = prepared(
            small_irregular,
            ("BMT_ROW_BLOCK", {"rows_per_block": 1}),
            ("BMT_PAD", {"mode": "multiple", "multiple": 4}),
        )
        counts = np.bincount(meta.blocks_of("bmt"))
        assert (counts % 4 == 0).all()
        assert meta.elem_pad.sum() > 0
        assert (meta.elem_val[meta.elem_pad] == 0).all()
        assert meta.useful_nnz == small_irregular.nnz

    def test_pad_max_within_parent(self, small_irregular):
        meta = prepared(
            small_irregular,
            ("BMTB_ROW_BLOCK", {"rows_per_block": 32}),
            ("BMT_ROW_BLOCK", {"rows_per_block": 1}),
            ("BMT_PAD", {"mode": "max"}),
        )
        bmt = meta.blocks_of("bmt")
        bmtb = meta.blocks_of("bmtb")
        counts = np.bincount(bmt)
        # All bmts within one bmtb share the same (max) size.
        starts = np.flatnonzero(np.r_[True, bmt[1:] != bmt[:-1]])
        parent_of_bmt = bmtb[starts]
        for p in np.unique(parent_of_bmt):
            sizes = counts[parent_of_bmt == p]
            assert (sizes == sizes[0]).all()

    def test_pad_global_max_is_ell(self, small_irregular):
        meta = prepared(
            small_irregular,
            ("BMT_ROW_BLOCK", {"rows_per_block": 1}),
            ("BMT_PAD", {"mode": "max"}),
        )
        counts = np.bincount(meta.blocks_of("bmt"))
        assert (counts == counts.max()).all()

    def test_pad_requires_blocks(self, small_regular):
        meta = prepared(small_regular)
        op = get_operator("BMT_PAD")
        with pytest.raises(OperatorError):
            op.check(meta, op.default_params())

    def test_pad_before_finer_only(self, small_regular):
        meta = prepared(
            small_regular,
            ("BMTB_ROW_BLOCK", {"rows_per_block": 32}),
            ("BMT_ROW_BLOCK", {"rows_per_block": 1}),
        )
        op = get_operator("BMTB_PAD")
        with pytest.raises(OperatorError):
            resolved = op.resolve_params({"mode": "multiple", "multiple": 8})
            op.check(meta, resolved)
            op.apply(meta, resolved)

    def test_pad_noop_when_aligned(self, small_regular):
        meta = prepared(
            small_regular,
            ("BMT_NNZ_BLOCK", {"nnz_per_block": 4}),
        )
        stored_before = meta.stored_elements
        op = get_operator("BMT_PAD")
        resolved = op.resolve_params({"mode": "multiple", "multiple": 2})
        op.check(meta, resolved)
        op.apply(meta, resolved)
        # all chunks except possibly the last are size 4 (mult of 2)
        assert meta.stored_elements <= stored_before + 1


class TestSortBmtb:
    def test_sorts_rows_within_block(self, small_irregular):
        meta = prepared(
            small_irregular,
            ("BMTB_ROW_BLOCK", {"rows_per_block": 32}),
            ("SORT_BMTB", {}),
        )
        lengths = np.bincount(meta.elem_row, minlength=meta.n_rows)
        for start in range(0, meta.n_rows - 32, 32):
            part = lengths[start : start + 32]
            assert (np.diff(part) <= 0).all()

    def test_requires_row_blocked_bmtb(self, small_irregular):
        meta = prepared(small_irregular, ("BMTB_NNZ_BLOCK", {"nnz_per_block": 64}))
        op = get_operator("SORT_BMTB")
        with pytest.raises(OperatorError):
            op.check(meta, {})


class TestBmtbRowPad:
    def test_pads_row_count(self, small_irregular):
        meta = prepared(
            small_irregular,
            ("BMTB_ROW_BLOCK", {"rows_per_block": 24}),
            ("BMTB_ROW_PAD", {"multiple": 32}),
        )
        blocks = meta.blocks_of("bmtb")
        for b in np.unique(blocks):
            # counting duplicated pad rows as extra slots
            sel = blocks == b
            rows = meta.elem_row[sel]
            pads = meta.elem_pad[sel]
            slots = np.unique(rows[~pads]).size + int(pads.sum())
            assert slots % 32 == 0

    def test_requires_row_blocked(self, small_irregular):
        meta = prepared(small_irregular)
        op = get_operator("BMTB_ROW_PAD")
        with pytest.raises(OperatorError):
            op.check(meta, op.default_params())


class TestInterleaved:
    def test_sets_flag(self, small_regular):
        meta = prepared(
            small_regular,
            ("BMT_ROW_BLOCK", {"rows_per_block": 1}),
            ("INTERLEAVED_STORAGE", {}),
        )
        assert meta.interleaved

    def test_requires_mapping(self, small_regular):
        meta = prepared(small_regular)
        op = get_operator("INTERLEAVED_STORAGE")
        with pytest.raises(OperatorError):
            op.check(meta, {})
