"""Plan-analysis subsystem tests: linear-time statistics + leaf caches.

Three acceptance bars:

* the bincount / boundary-diff statistics must equal the seed's sort-based
  ``np.unique`` implementations exactly (randomised property tests,
  including a full reference reimplementation of the old reduction walk);
* search histories must be byte-identical with the leaf-analysis cache on
  or off and for any worker count;
* numeric verification (``spmv_allclose``) must run once per design, not
  once per candidate.
"""


import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.designer import Designer, default_invariant_checks
from repro.core.graph import OperatorGraph
from repro.core.kernel.builder import KernelBuilder
from repro.gpu import A100
from repro.gpu.analysis import AnalysisStats, LeafAnalysis, LeafAnalysisCache
from repro.gpu.executor import (
    ExecutionPlan,
    PlanValidationError,
    ReductionStep,
    _flow_partials,
    _functional_y,
    _pair_stats,
    _regroup,
    _sorted_unique_pairs,
    execute,
    plan_cost_inputs,
)
from repro.gpu.memory import unique_column_count
from repro.search import SearchBudget, SearchEngine
from repro.search.evaluation import StagedEvaluator
from repro.sparse import SparseMatrix, power_law_matrix


# ---------------------------------------------------------------------------
# Reference implementations (the seed's sort-based np.unique algorithms)
# ---------------------------------------------------------------------------

def _pair_counts_reference(groups, rows):
    if rows.size == 0:
        return (0, 0)
    key = groups.astype(np.int64) * (int(rows.max()) + 1) + rows
    uniq_pairs = np.unique(key)
    pair_groups = uniq_pairs // (int(rows.max()) + 1)
    group_ids, counts = np.unique(pair_groups, return_counts=True)
    return (int(group_ids.size), int(counts.max()))


def _merge_reference(groups, rows):
    if rows.size == 0:
        return groups, rows
    base = int(rows.max()) + 1
    key = groups.astype(np.int64) * base + rows
    uniq = np.unique(key)
    return (uniq // base), (uniq % base)


def _flow_partials_reference(plan):
    """The seed's reduction walk, verbatim, for differential testing."""
    valid = plan.out_rows >= 0
    rows = plan.out_rows[valid]
    threads = plan.thread_of_nz[valid]
    out = dict(shuffle_ops=0, shmem_ops=0, serial_red_ops=0, sync_barriers=0,
               atomic_ops=0, final_rows=None)
    if rows.size == 0:
        out["final_rows"] = rows
        return out
    cur_groups, cur_rows = threads, rows
    granularity = 1
    for step in plan.reduction_steps:
        if step.level == "thread":
            n_groups, per_group_max = _pair_counts_reference(cur_groups, cur_rows)
            if step.strategy == "THREAD_TOTAL_RED":
                if per_group_max > 1:
                    raise PlanValidationError("THREAD_TOTAL_RED reference")
            else:
                out["serial_red_ops"] += int(cur_rows.size)
            cur_groups, cur_rows = _merge_reference(cur_groups, cur_rows)
        elif step.level == "warp":
            if granularity > plan.warp_size:
                raise PlanValidationError("warp order reference")
            groups = cur_groups // (plan.warp_size // granularity)
            granularity = plan.warp_size
            n_groups, per_group_max = _pair_counts_reference(groups, cur_rows)
            if step.strategy == "WARP_TOTAL_RED":
                if per_group_max > 1:
                    raise PlanValidationError("WARP_TOTAL_RED reference")
                out["shuffle_ops"] += n_groups * 5
            elif step.strategy == "WARP_SEG_RED":
                out["shuffle_ops"] += n_groups * 10
            else:
                out["shuffle_ops"] += n_groups * 8
            cur_groups, cur_rows = _merge_reference(groups, cur_rows)
        elif step.level == "block":
            if granularity > plan.threads_per_block:
                raise PlanValidationError("block order reference")
            groups = cur_groups // (plan.threads_per_block // granularity)
            granularity = plan.threads_per_block
            n_groups, per_group_max = _pair_counts_reference(groups, cur_rows)
            if step.strategy == "SHMEM_TOTAL_RED":
                if per_group_max > 1:
                    raise PlanValidationError("SHMEM_TOTAL_RED reference")
                out["shmem_ops"] += int(cur_rows.size)
                out["sync_barriers"] += n_groups * max(
                    1, int(np.log2(max(2, plan.threads_per_block)))
                )
            else:
                out["shmem_ops"] += int(3 * cur_rows.size)
                out["sync_barriers"] += n_groups * 2
            cur_groups, cur_rows = _merge_reference(groups, cur_rows)
        else:
            out["final_rows"] = cur_rows
            if step.strategy == "GMEM_ATOM_RED":
                out["atomic_ops"] = int(cur_rows.size)
            else:
                counts = np.bincount(cur_rows, minlength=plan.n_rows)
                if counts.max(initial=0) > 1:
                    raise PlanValidationError("GMEM_DIRECT_STORE reference")
    return out


# ---------------------------------------------------------------------------
# Property tests: linear-time primitives == np.unique reference
# ---------------------------------------------------------------------------

@given(
    n=st.integers(0, 200),
    n_groups=st.integers(1, 40),
    n_rows=st.integers(1, 30),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=80, deadline=None)
def test_property_sorted_unique_pairs_match_unique(n, n_groups, n_rows, seed):
    rng = np.random.default_rng(seed)
    groups = rng.integers(0, n_groups, n).astype(np.int64)
    rows = rng.integers(0, n_rows, n).astype(np.int64)
    base = n_rows
    key = _sorted_unique_pairs(groups, rows, base)
    np.testing.assert_array_equal(
        key, np.unique(groups.astype(np.int64) * base + rows)
    )
    got = _pair_stats(key, base)
    want = _pair_counts_reference(groups, rows) if n else (0, 0)
    assert (got.n_groups, got.per_group_max) == want


@given(
    n=st.integers(1, 150),
    n_groups=st.integers(1, 64),
    n_rows=st.integers(1, 20),
    shrink=st.sampled_from([1, 2, 4, 32]),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=60, deadline=None)
def test_property_regroup_matches_merge_reference(n, n_groups, n_rows, shrink, seed):
    rng = np.random.default_rng(seed)
    groups = rng.integers(0, n_groups, n).astype(np.int64)
    rows = rng.integers(0, n_rows, n).astype(np.int64)
    base = n_rows
    key = _sorted_unique_pairs(groups, rows, base)
    regrouped = _regroup(key, base, shrink)
    want_g, want_r = _merge_reference(groups // shrink, rows)
    np.testing.assert_array_equal(regrouped // base, want_g)
    np.testing.assert_array_equal(regrouped % base, want_r)


@given(
    n=st.integers(0, 300),
    n_cols=st.integers(1, 80),
    pad_frac=st.floats(0.0, 0.5),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=80, deadline=None)
def test_property_unique_column_count_matches_unique(n, n_cols, pad_frac, seed):
    rng = np.random.default_rng(seed)
    cols = rng.integers(0, n_cols, n)
    pad = rng.random(n) < pad_frac
    cols[pad] = -1
    valid = cols[cols >= 0]
    want = int(np.unique(valid).size) if valid.size else 0
    assert unique_column_count(cols) == want


@given(
    n_rows=st.integers(1, 16),
    n_cols=st.integers(1, 16),
    nnz=st.integers(1, 60),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=60, deadline=None)
def test_property_bincount_y_bit_identical_to_add_at(n_rows, n_cols, nnz, seed):
    rng = np.random.default_rng(seed)
    m = SparseMatrix(
        n_rows, n_cols,
        rng.integers(0, n_rows, nnz),
        rng.integers(0, n_cols, nnz),
        rng.random(nnz) + 0.5,
    )
    plan = ExecutionPlan(
        n_rows=n_rows, n_cols=n_cols, useful_nnz=m.nnz,
        values=m.vals.copy(), col_indices=m.cols.copy(),
        out_rows=m.rows.copy(), thread_of_nz=np.zeros(m.nnz, dtype=np.int64),
        n_threads=1, threads_per_block=32,
        reduction_steps=(ReductionStep("global", "GMEM_ATOM_RED"),),
    )
    x = rng.random(n_cols)
    valid = plan.out_rows >= 0
    got = _functional_y(plan, x, valid)
    want = np.zeros(n_rows, dtype=np.float64)
    products = plan.values[valid] * x[plan.col_indices[valid]]
    np.add.at(want, plan.out_rows[valid], products)
    np.testing.assert_array_equal(got, want)  # bit-identical, not allclose


_CHAINS = [
    (("global", "GMEM_ATOM_RED"),),
    (("global", "GMEM_DIRECT_STORE"),),
    (("thread", "THREAD_TOTAL_RED"), ("global", "GMEM_DIRECT_STORE")),
    (("thread", "THREAD_BITMAP_RED"), ("global", "GMEM_ATOM_RED")),
    (("warp", "WARP_SEG_RED"), ("global", "GMEM_ATOM_RED")),
    (("warp", "WARP_TOTAL_RED"), ("global", "GMEM_DIRECT_STORE")),
    (("thread", "THREAD_BITMAP_RED"), ("warp", "WARP_BITMAP_RED"),
     ("block", "SHMEM_OFFSET_RED"), ("global", "GMEM_ATOM_RED")),
    (("block", "SHMEM_TOTAL_RED"), ("global", "GMEM_DIRECT_STORE")),
    (("warp", "WARP_BITMAP_RED"), ("block", "SHMEM_OFFSET_RED"),
     ("global", "GMEM_DIRECT_STORE")),
]


@given(
    n_rows=st.integers(1, 24),
    nnz=st.integers(1, 120),
    n_threads=st.integers(1, 96),
    chain=st.sampled_from(_CHAINS),
    sort_threads=st.booleans(),
    seed=st.integers(0, 10_000),
)
@settings(max_examples=120, deadline=None)
def test_property_reduction_walk_matches_seed_reference(
    n_rows, nnz, n_threads, chain, sort_threads, seed
):
    """Differential test: the boundary-diff walk replays the seed's
    np.unique walk exactly — same counts, same final rows, same errors."""
    rng = np.random.default_rng(seed)
    threads = rng.integers(0, n_threads, nnz).astype(np.int64)
    if sort_threads:
        threads = np.sort(threads)
    rows = rng.integers(0, n_rows, nnz).astype(np.int64)
    pad = rng.random(nnz) < 0.2
    rows_padded = rows.copy()
    rows_padded[pad] = -1
    plan = ExecutionPlan(
        n_rows=n_rows, n_cols=8, useful_nnz=int((~pad).sum()),
        values=rng.random(nnz), col_indices=rng.integers(0, 8, nnz),
        out_rows=rows_padded, thread_of_nz=threads,
        n_threads=n_threads, threads_per_block=32,
        reduction_steps=tuple(ReductionStep(lv, s) for lv, s in chain),
    )
    try:
        want = _flow_partials_reference(plan)
    except PlanValidationError:
        with pytest.raises(PlanValidationError):
            _flow_partials(plan)
        return
    got = _flow_partials(plan)
    assert got.shuffle_ops == want["shuffle_ops"]
    assert got.shmem_ops == want["shmem_ops"]
    assert got.serial_red_ops == want["serial_red_ops"]
    assert got.sync_barriers == want["sync_barriers"]
    assert got.atomic_ops == want["atomic_ops"]
    np.testing.assert_array_equal(
        np.sort(got.final_rows), np.sort(want["final_rows"])
    )


# ---------------------------------------------------------------------------
# Analysis-backed plans == standalone plans
# ---------------------------------------------------------------------------

class TestAnalysisBackedEquivalence:
    GRAPH = ["COMPRESS", ("BMT_ROW_BLOCK", {"rows_per_block": 1}),
             ("SET_RESOURCES", {"threads_per_block": 256}),
             "THREAD_TOTAL_RED", "GMEM_DIRECT_STORE"]

    def test_cost_inputs_and_y_identical(self, small_irregular, x_for):
        graph = OperatorGraph.from_names(self.GRAPH)
        builder = KernelBuilder()
        plain = builder.build(small_irregular, graph)
        evaluator = StagedEvaluator(builder, analysis=LeafAnalysisCache())
        analysed = evaluator.build(small_irregular, graph)
        x = x_for(small_irregular)
        for unit_p, unit_a in zip(plain.kernels, analysed.kernels):
            assert unit_a.plan.analysis is not None
            assert unit_p.plan.analysis is None
            assert plan_cost_inputs(unit_a.plan, A100) == plan_cost_inputs(
                unit_p.plan, A100
            )
            res_p = execute(unit_p.plan, x, A100)
            res_a = execute(unit_a.plan, x, A100)
            np.testing.assert_array_equal(res_p.y, res_a.y)
            assert res_p.cost.total_s == res_a.cost.total_s
        assert plain.source() == analysed.source()

    def test_cached_y_is_shared_and_readonly(self, small_irregular, x_for):
        graph = OperatorGraph.from_names(self.GRAPH)
        evaluator = StagedEvaluator(KernelBuilder(), analysis=LeafAnalysisCache())
        x = x_for(small_irregular)
        first = evaluator.build(small_irregular, graph)
        second = evaluator.build(small_irregular, graph)
        y1 = execute(first.kernels[0].plan, x, A100).y
        y2 = execute(second.kernels[0].plan, x, A100).y
        assert y1 is y2  # one functional execution per leaf per x
        assert not y1.flags.writeable


# ---------------------------------------------------------------------------
# Search-level identity + verification accounting
# ---------------------------------------------------------------------------

SMALL_BUDGET = SearchBudget(
    max_structures=8, coarse_evals_per_structure=4, max_total_evals=50, ml_top_k=3
)


def _engine(jobs=1, analysis=True, cache=True):
    return SearchEngine(
        A100,
        budget=SearchBudget(
            max_structures=SMALL_BUDGET.max_structures,
            coarse_evals_per_structure=SMALL_BUDGET.coarse_evals_per_structure,
            max_total_evals=SMALL_BUDGET.max_total_evals,
            ml_top_k=SMALL_BUDGET.ml_top_k,
            jobs=jobs,
        ),
        seed=3,
        enable_design_cache=cache,
        enable_analysis_cache=analysis,
    )


def _history_tuple(result):
    return [r.identity() for r in result.history]


class TestSearchIdentity:
    @pytest.fixture(scope="class")
    def matrix(self):
        return power_law_matrix(512, avg_degree=8, seed=2, name="pa_identity")

    @pytest.fixture(scope="class")
    def baseline(self, matrix):
        return _engine(analysis=False).search(matrix)

    @pytest.mark.parametrize(
        "jobs,analysis,cache",
        [(1, True, True), (4, True, True), (1, True, False), (4, True, False)],
        ids=["serial", "jobs4", "serial-nodesigncache", "jobs4-nodesigncache"],
    )
    def test_histories_byte_identical(self, matrix, baseline, jobs, analysis, cache):
        with _engine(jobs=jobs, analysis=analysis, cache=cache) as engine:
            result = engine.search(matrix)
        assert result.best_gflops == baseline.best_gflops
        assert _history_tuple(result) == _history_tuple(baseline)
        assert result.best_graph.signature() == baseline.best_graph.signature()

    def test_analysis_counters_surfaced(self, matrix):
        result = _engine().search(matrix)
        assert result.analysis_cache_misses > 0
        # The batched path fetches each design's LeafAnalysis once per
        # candidate group — far fewer lookups than evaluations.
        assert (
            result.analysis_cache_hits + result.analysis_cache_misses
            <= result.total_evaluations
        )
        off = _engine(analysis=False).search(matrix)
        assert off.analysis_cache_hits == 0
        assert off.analysis_cache_misses == 0

    def test_stage_times_recorded(self, matrix):
        result = _engine().search(matrix)
        # Batched evaluation replaces the per-candidate assembly/analysis
        # stages with whole-group batch_assembly/batch_cost passes.
        for stage in ("design", "batch_assembly", "batch_cost", "verify"):
            assert result.stage_times.get(stage, 0.0) > 0.0
        assert sum(result.stage_times.values()) <= result.wall_time_s * 1.5

    def test_stage_times_recorded_legacy_path(self, matrix):
        result = _engine(cache=False).search(matrix)
        for stage in ("design", "assembly", "analysis", "verify"):
            assert result.stage_times.get(stage, 0.0) > 0.0

    def test_verification_runs_once_per_design(self, matrix, monkeypatch):
        # The engine verifies through the workload's allclose, which
        # routes to the shared spmv_allclose gate — count it there.
        import repro.workloads as workloads_mod

        calls = []
        real = workloads_mod.spmv_allclose

        def counting(y, reference):
            calls.append(1)
            return real(y, reference)

        monkeypatch.setattr(workloads_mod, "spmv_allclose", counting)
        result = _engine().search(matrix)
        ran = [r for r in result.history if r.error in ("", "numeric mismatch")]
        # one verification per *design*, not per candidate
        assert 0 < len(calls) <= result.analysis_cache_misses
        assert len(calls) < len(ran)


# ---------------------------------------------------------------------------
# Satellite: ExecutionPlan thread-id validation
# ---------------------------------------------------------------------------

class TestThreadRangeValidation:
    def _plan(self, threads, n_threads):
        threads = np.asarray(threads, dtype=np.int64)
        n = threads.size
        return ExecutionPlan(
            n_rows=4, n_cols=4, useful_nnz=n,
            values=np.ones(n), col_indices=np.zeros(n, dtype=np.int64),
            out_rows=np.zeros(n, dtype=np.int64), thread_of_nz=threads,
            n_threads=n_threads, threads_per_block=32,
            reduction_steps=(ReductionStep("global", "GMEM_ATOM_RED"),),
        )

    def test_out_of_range_thread_id_rejected(self):
        """Regression: an id >= n_threads used to silently corrupt the
        per-thread bincounts in plan_cost_inputs."""
        with pytest.raises(ValueError, match="thread_of_nz out of range"):
            self._plan([0, 1, 4], n_threads=4)

    def test_negative_thread_id_rejected(self):
        with pytest.raises(ValueError, match="thread_of_nz out of range"):
            self._plan([0, -1, 2], n_threads=4)

    def test_boundary_ids_accepted(self):
        plan = self._plan([0, 3, 3], n_threads=4)
        assert plan.n_threads == 4

    def test_out_of_range_row_rejected(self):
        n = 3
        with pytest.raises(ValueError, match="out_rows"):
            ExecutionPlan(
                n_rows=2, n_cols=4, useful_nnz=n,
                values=np.ones(n), col_indices=np.zeros(n, dtype=np.int64),
                out_rows=np.array([0, 1, 2]), thread_of_nz=np.zeros(n, dtype=np.int64),
                n_threads=1, threads_per_block=32,
                reduction_steps=(ReductionStep("global", "GMEM_ATOM_RED"),),
            )


# ---------------------------------------------------------------------------
# Satellite: invariant-check gating
# ---------------------------------------------------------------------------

class TestInvariantGating:
    def test_on_under_pytest(self):
        assert default_invariant_checks() is True
        assert Designer().check_invariants is True

    def test_env_override_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "0")
        assert default_invariant_checks() is False
        assert Designer().check_invariants is False
        monkeypatch.setenv("REPRO_CHECK_INVARIANTS", "1")
        assert Designer().check_invariants is True

    def test_off_outside_pytest(self, monkeypatch):
        monkeypatch.delenv("PYTEST_CURRENT_TEST", raising=False)
        monkeypatch.delenv("REPRO_CHECK_INVARIANTS", raising=False)
        assert default_invariant_checks() is False

    def test_explicit_argument_still_wins(self):
        assert Designer(check_invariants=False).check_invariants is False
        assert Designer(check_invariants=True).check_invariants is True


# ---------------------------------------------------------------------------
# LeafAnalysisCache behaviour
# ---------------------------------------------------------------------------

class TestLeafAnalysisCache:
    def test_one_miss_per_design_key(self):
        cache = LeafAnalysisCache()
        a = cache.for_design(("k1",))
        assert cache.for_design(("k1",)) is a
        b = cache.for_design(("k2",))
        assert b is not a
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 2)

    def test_lru_eviction(self):
        cache = LeafAnalysisCache(max_entries=2)
        for i in range(4):
            cache.for_design((i,))
        assert len(cache) == 2
        assert cache.stats().evictions == 2

    def test_stats_delta(self):
        before = AnalysisStats(hits=1, misses=2, evictions=0)
        after = AnalysisStats(hits=4, misses=3, evictions=1)
        delta = after.since(before)
        assert (delta.hits, delta.misses, delta.evictions) == (3, 1, 1)

    def test_leaf_analysis_computes_once(self):
        analysis = LeafAnalysis()
        calls = []

        def compute():
            calls.append(1)
            return np.arange(4)

        first = analysis.cached_array("k", compute)
        second = analysis.cached_array("k", compute)
        assert first is second
        assert len(calls) == 1
        assert not first.flags.writeable

    def test_assembly_errors_replayed_identically(self, small_regular):
        """A cached runtime-parameter failure re-raises the same error
        type and message the uncached path produces."""
        from repro.core.designer import DesignError

        graph = OperatorGraph.from_names([
            "COMPRESS",
            ("SET_RESOURCES", {"threads_per_block": 100}),  # not warp multiple
            "GMEM_ATOM_RED",
        ])
        builder = KernelBuilder()
        with pytest.raises(DesignError) as plain:
            builder.build(small_regular, graph)
        evaluator = StagedEvaluator(builder, analysis=LeafAnalysisCache())
        for _ in range(2):  # second raise comes from the unit cache
            with pytest.raises(DesignError) as cached:
                evaluator.build(small_regular, graph)
            assert str(cached.value) == str(plain.value)
