"""Journal store backend: crash consistency, faults, parity with the
directory backend.

The load-bearing suite is :class:`TestCrashConsistency`: a writer killed
mid-append must never cost more than the record it was writing.  We
simulate the kill at *every* byte offset of a populated journal —
truncate, reopen, and assert the survivor recovers to exactly the state
of the last complete record, with the torn tail physically truncated.

The differential test then pins the other half of the contract: for the
same write sequence, the journal backend and the directory backend hold
bit-identical entry documents (shared doc builders), so the serving layer
cannot tell them apart.
"""

import fcntl
import json
import os
import tempfile

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.designer import DesignLeaf
from repro.core.metadata import MatrixMetadataSet
from repro.reliability.faults import FaultPlan, InjectedCrash
from repro.reliability.retry import RetryPolicy
from repro.search.evaluation import matrix_token
from repro.sparse import banded_matrix
from repro.store import DesignStore, JournalStore, StoreError, open_store
from repro.store.journal import (
    _FRAME,
    _HEADER_SIZE,
    LockContended,
    LockTimeoutError,
)

ARCH = "A100"
SIG = (("COMPRESS", ()),)

_MATS = [
    banded_matrix(8 + 4 * i, bandwidth=1, seed=i, name=f"m{i}") for i in range(3)
]
_TOKENS = [matrix_token(m) for m in _MATS]
_LEAVES = [
    [DesignLeaf(meta=MatrixMetadataSet.from_matrix(m), branch_path=())]
    for m in _MATS
]


def _result(gflops):
    return {"best_gflops": float(gflops), "via": "search"}


def _frames(data):
    """Absolute (start, end) offsets of every complete frame in ``data``."""
    pos, out = _HEADER_SIZE, []
    while pos + _FRAME.size <= len(data):
        length, _ = _FRAME.unpack_from(data, pos)
        end = pos + _FRAME.size + length
        if end > len(data):
            break
        out.append((pos, end))
        pos = end
    return out


def _fast_lock_policy():
    return RetryPolicy(
        attempts=2, base_delay_s=0.001, max_delay_s=0.002,
        retry_on=(LockContended,),
    )


# ----------------------------------------------------------------------
# Backend selection
# ----------------------------------------------------------------------
class TestOpenStore:
    def test_auto_detects_backend(self, tmp_path):
        jpath, dpath = tmp_path / "j", tmp_path / "d"
        assert isinstance(open_store(jpath, backend="journal"), JournalStore)
        assert isinstance(open_store(dpath, backend="dir"), DesignStore)
        assert isinstance(open_store(jpath), JournalStore)  # header says so
        assert isinstance(open_store(dpath), DesignStore)
        assert isinstance(open_store(tmp_path / "fresh"), DesignStore)

    def test_unknown_backend_rejected(self, tmp_path):
        with pytest.raises(StoreError, match="unknown store backend"):
            open_store(tmp_path / "s", backend="sqlite")

    def test_wrong_class_for_backend_rejected(self, tmp_path):
        open_store(tmp_path / "j", backend="journal")
        with pytest.raises(StoreError, match="journal"):
            DesignStore(tmp_path / "j")
        open_store(tmp_path / "d", backend="dir")
        with pytest.raises(StoreError, match="backend"):
            JournalStore(tmp_path / "d")


# ----------------------------------------------------------------------
# Round trips and multi-handle visibility
# ----------------------------------------------------------------------
class TestJournalBasics:
    def test_design_and_result_roundtrip_across_handles(self, tmp_path):
        store = JournalStore(tmp_path / "s")
        store.put_design(_TOKENS[0], SIG, ARCH, leaves=_LEAVES[0])
        store.put_design(_TOKENS[1], SIG, ARCH, error="BIN: no rows")
        store.put_result(_TOKENS[0], ARCH, _result(1.0))
        store.put_result(_TOKENS[0], ARCH, _result(2.0))  # last wins

        fresh = JournalStore(tmp_path / "s")
        status, leaves = fresh.get_design(_TOKENS[0], SIG, ARCH)
        assert status == "ok" and len(leaves) == 1
        status, message = fresh.get_design(_TOKENS[1], SIG, ARCH)
        assert status == "error" and "no rows" in message
        assert fresh.get_result(_TOKENS[0], ARCH)["best_gflops"] == 2.0
        assert fresh.get_design(_TOKENS[2], SIG, ARCH) is None
        assert len(fresh) == 3

    def test_first_design_writer_wins(self, tmp_path):
        store = JournalStore(tmp_path / "s")
        store.put_design(_TOKENS[0], ("sig",), ARCH, error="first")
        store.put_design(_TOKENS[0], ("sig",), ARCH, error="second")
        _, message = store.get_design(_TOKENS[0], ("sig",), ARCH)
        assert message == "first"

    def test_second_handle_sees_live_appends(self, tmp_path):
        h1 = JournalStore(tmp_path / "s")
        h2 = JournalStore(tmp_path / "s")
        h1.put_result(_TOKENS[0], ARCH, _result(1.0))
        assert h2.get_result(_TOKENS[0], ARCH)["best_gflops"] == 1.0
        epoch_before = h2._state.epoch
        h1.put_result(_TOKENS[1], ARCH, _result(2.0))
        # same epoch, grown file: incremental replay, not a full reload
        assert h2.get_result(_TOKENS[1], ARCH)["best_gflops"] == 2.0
        assert h2._state.epoch == epoch_before

    def test_claims_are_at_most_once_and_durable(self, tmp_path):
        store = JournalStore(tmp_path / "s")
        assert store.claim_search("key-1") is True
        assert store.claim_search("key-1") is False
        other = JournalStore(tmp_path / "s")
        assert other.claim_search("key-1") is False  # survives the handle
        assert other.claims() == ["key-1"]
        other.gc()  # claims are between-runs residue
        assert JournalStore(tmp_path / "s").claim_search("key-1") is True


# ----------------------------------------------------------------------
# Crash consistency (the tentpole acceptance criterion)
# ----------------------------------------------------------------------
class TestCrashConsistency:
    def test_recovery_at_every_truncation_offset(self, tmp_path):
        """Kill the writer at every byte of the journal: the survivor
        recovers to exactly the last complete record, and physically
        truncates the torn tail."""
        path = tmp_path / "s"
        store = JournalStore(path)
        store.put_design(_TOKENS[0], SIG, ARCH, leaves=_LEAVES[0])
        store.put_design(_TOKENS[1], ("sig",), ARCH, error="BIN: nope")
        store.put_result(_TOKENS[0], ARCH, _result(1.0))
        store.claim_search("claim-1")
        store.put_result(_TOKENS[0], ARCH, _result(2.0))

        journal = path / "journal.log"
        data = journal.read_bytes()
        frames = _frames(data)
        assert len(frames) == 5
        records = [
            json.loads(data[s + _FRAME.size : e]) for s, e in frames
        ]

        for cut in range(_HEADER_SIZE, len(data) + 1):
            journal.write_bytes(data[:cut])
            survivor = JournalStore(path)
            survivor.claims()  # force a refresh
            designs, results, claims = {}, {}, set()
            boundary = _HEADER_SIZE
            for (start, end), record in zip(frames, records):
                if end > cut:
                    break
                boundary = end
                if record["op"] == "design":
                    designs.setdefault(record["key"], record["entry"])
                elif record["op"] == "result":
                    results[record["key"]] = record["entry"]
                else:
                    claims.add(record["key"])
            assert survivor._state.designs == designs, f"cut at {cut}"
            assert survivor._state.results == results, f"cut at {cut}"
            assert survivor._state.claims == claims, f"cut at {cut}"
            assert os.path.getsize(journal) == boundary, f"cut at {cut}"

    def test_torn_write_fault_loses_only_that_record(self, tmp_path):
        plan = FaultPlan(seed=0, torn_write_rate=1.0)
        store = JournalStore(tmp_path / "s", faults=plan)
        with pytest.raises(InjectedCrash, match="torn journal write"):
            store.put_result(_TOKENS[0], ARCH, _result(1.0))
        survivor = JournalStore(tmp_path / "s")
        assert survivor.get_result(_TOKENS[0], ARCH) is None
        assert os.path.getsize(tmp_path / "s" / "journal.log") == _HEADER_SIZE

    def test_corrupt_record_rejected_at_replay(self, tmp_path):
        plan = FaultPlan(seed=0, corrupt_record_rate=1.0)
        store = JournalStore(tmp_path / "s", faults=plan)
        store.put_result(_TOKENS[0], ARCH, _result(1.0))
        # the damaged bytes never reach the writer's own cache either
        assert store.get_result(_TOKENS[0], ARCH) is None
        fresh = JournalStore(tmp_path / "s")
        assert fresh.get_result(_TOKENS[0], ARCH) is None
        reasons = [e.detail for e in fresh.entries() if e.kind == "journal"]
        assert any("digest mismatch" in r or "undecodable" in r for r in reasons)

    def test_mid_log_frame_damage_reported_and_repaired(self, tmp_path):
        path = tmp_path / "s"
        store = JournalStore(path)
        store.put_result(_TOKENS[0], ARCH, _result(1.0))
        store.put_result(_TOKENS[1], ARCH, _result(2.0))
        journal = path / "journal.log"
        data = bytearray(journal.read_bytes())
        (start, end), _ = _frames(bytes(data))
        data[start + _FRAME.size + 2] ^= 0xFF  # break the first record's CRC
        journal.write_bytes(bytes(data))

        damaged = JournalStore(path)
        # frame-level damage: everything behind it is unreachable
        assert damaged.get_result(_TOKENS[0], ARCH) is None
        assert damaged.get_result(_TOKENS[1], ARCH) is None
        rows = [e for e in damaged.entries() if e.kind == "journal" and not e.ok]
        assert rows and "records lost after offset" in rows[0].detail
        damaged.verify(repair=True)  # compacts the damage away
        clean = JournalStore(path)
        assert not [e for e in clean.entries() if not e.ok]

    def test_compaction_crash_between_snapshot_and_reset(
        self, tmp_path, monkeypatch
    ):
        path = tmp_path / "s"
        store = JournalStore(path)
        store.put_result(_TOKENS[0], ARCH, _result(3.0))

        def crash(epoch):
            raise InjectedCrash("died before the journal reset")

        monkeypatch.setattr(store, "_reset_journal", crash)
        with pytest.raises(InjectedCrash):
            store.compact()
        # snapshot (epoch 1) is on disk; journal still epoch 0 + records.
        # A reader that cannot recover (writer lock held elsewhere) must
        # not double-apply the journal on top of the snapshot.
        lock_fd = os.open(path / "journal.lock", os.O_CREAT | os.O_RDWR)
        try:
            fcntl.flock(lock_fd, fcntl.LOCK_EX)
            reader = JournalStore(path, lock_policy=_fast_lock_policy())
            assert reader.get_result(_TOKENS[0], ARCH)["best_gflops"] == 3.0
        finally:
            fcntl.flock(lock_fd, fcntl.LOCK_UN)
            os.close(lock_fd)
        # with the lock free, open-time recovery finishes the reset
        recovered = JournalStore(path)
        assert recovered.get_result(_TOKENS[0], ARCH)["best_gflops"] == 3.0
        assert recovered._read_header() == 1
        assert os.path.getsize(path / "journal.log") == _HEADER_SIZE

    def test_compact_and_auto_compact_preserve_contents(self, tmp_path):
        store = JournalStore(tmp_path / "s")
        store.put_design(_TOKENS[0], SIG, ARCH, leaves=_LEAVES[0])
        store.put_result(_TOKENS[0], ARCH, _result(1.0))
        report = store.compact()
        assert report["epoch"] == 1 and report["reclaimed_bytes"] > 0
        fresh = JournalStore(tmp_path / "s")
        assert fresh.get_result(_TOKENS[0], ARCH)["best_gflops"] == 1.0
        assert fresh.get_design(_TOKENS[0], SIG, ARCH)[0] == "ok"

        auto = JournalStore(tmp_path / "auto", auto_compact_bytes=64)
        auto.put_result(_TOKENS[0], ARCH, _result(1.0))
        auto.put_result(_TOKENS[1], ARCH, _result(2.0))
        assert auto._read_header() >= 1  # compaction fired on its own
        assert JournalStore(tmp_path / "auto").get_result(
            _TOKENS[1], ARCH
        )["best_gflops"] == 2.0


# ----------------------------------------------------------------------
# Locking and quarantine
# ----------------------------------------------------------------------
class TestLockingAndQuarantine:
    def test_contended_lock_times_out_bounded(self, tmp_path):
        path = tmp_path / "s"
        store = JournalStore(path, lock_policy=_fast_lock_policy())
        lock_fd = os.open(path / "journal.lock", os.O_CREAT | os.O_RDWR)
        try:
            fcntl.flock(lock_fd, fcntl.LOCK_EX)
            with pytest.raises(LockTimeoutError, match="journal lock"):
                store.put_result(_TOKENS[0], ARCH, _result(1.0))
        finally:
            fcntl.flock(lock_fd, fcntl.LOCK_UN)
            os.close(lock_fd)
        store.put_result(_TOKENS[0], ARCH, _result(1.0))  # recovers after

    def test_injected_lock_timeouts_beat_the_retry_budget(self, tmp_path):
        plan = FaultPlan(seed=0, lock_timeout_rate=1.0)
        store = JournalStore(
            tmp_path / "s", faults=plan, lock_policy=_fast_lock_policy()
        )
        with pytest.raises(LockTimeoutError):
            store.put_result(_TOKENS[0], ARCH, _result(1.0))

    def test_partial_injected_contention_is_survived_by_retry(self, tmp_path):
        plan = FaultPlan(seed=3, lock_timeout_rate=0.4)
        store = JournalStore(
            tmp_path / "s",
            faults=plan,
            lock_policy=RetryPolicy(
                attempts=20, base_delay_s=0.0005, max_delay_s=0.002,
                retry_on=(LockContended,),
            ),
        )
        for i, token in enumerate(_TOKENS):
            store.put_result(token, ARCH, _result(float(i)))
        assert len(store.results(ARCH)) == 3
        assert store.faults.fired.get("lock_timeout", 0) > 0

    def test_unhydratable_design_is_quarantined(self, tmp_path):
        from repro.store.design import design_entry_doc

        path = tmp_path / "s"
        store = JournalStore(path)
        digest = store.design_digest(_TOKENS[0], SIG, ARCH)
        # CRC-valid, digest-valid record whose payload will not hydrate
        entry = design_entry_doc(
            _TOKENS[0], SIG, ARCH, {"status": "ok", "leaves": [{"bogus": 1}]}
        )
        store._write_locked({"op": "design", "key": digest, "entry": entry})
        assert store.get_design(_TOKENS[0], SIG, ARCH) is None
        assert store.stats().quarantined == 1
        assert store.quarantine_log and "design/" in store.quarantine_log[0][0]
        # the drop record is durable: a fresh handle never sees the entry
        fresh = JournalStore(path)
        fresh.claims()
        assert digest not in fresh._state.designs
        # and the key heals by write-back
        store.put_design(_TOKENS[0], SIG, ARCH, leaves=_LEAVES[0])
        assert store.get_design(_TOKENS[0], SIG, ARCH)[0] == "ok"

    def test_gc_prunes_unreferenced_designs_and_compacts(self, tmp_path):
        from repro.store import make_result_record

        store = JournalStore(tmp_path / "s")
        store.put_design(_TOKENS[0], SIG, ARCH, leaves=_LEAVES[0])
        store.put_design(_TOKENS[1], SIG, ARCH, leaves=_LEAVES[1])
        store.put_result(
            _TOKENS[0], ARCH, make_result_record(_MATS[0], ARCH, 1.0, None)
        )
        removed_corrupt, removed_unreferenced = store.gc()
        assert removed_corrupt == []
        assert len(removed_unreferenced) == 1  # token 1 had no result
        assert store.get_design(_TOKENS[0], SIG, ARCH) is not None
        assert store.get_design(_TOKENS[1], SIG, ARCH) is None


# ----------------------------------------------------------------------
# Differential parity with the directory backend
# ----------------------------------------------------------------------
class TestBackendParity:
    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["design_ok", "design_err", "result"]),
                st.integers(min_value=0, max_value=2),
                st.integers(min_value=1, max_value=999),
            ),
            max_size=10,
        )
    )
    def test_backends_hold_bit_identical_content(self, ops):
        """Same write sequence → byte-identical entry documents in both
        backends (shared doc builders), so reads cannot diverge."""
        with tempfile.TemporaryDirectory() as tmp:
            stores = (
                DesignStore(os.path.join(tmp, "dir")),
                JournalStore(os.path.join(tmp, "journal")),
            )
            for op, idx, value in ops:
                for store in stores:
                    if op == "design_ok":
                        store.put_design(
                            _TOKENS[idx], SIG, ARCH, leaves=_LEAVES[idx]
                        )
                    elif op == "design_err":
                        store.put_design(
                            _TOKENS[idx], ("sig",), ARCH, error=f"E{value}"
                        )
                    else:
                        store.put_result(_TOKENS[idx], ARCH, _result(value))
            dir_store, journal_store = stores
            assert json.dumps(
                dir_store.design_payloads(), sort_keys=True
            ) == json.dumps(journal_store.design_payloads(), sort_keys=True)
            assert dir_store.results() == journal_store.results()
            assert dir_store.result_metas() == journal_store.result_metas()
            for op, idx, _ in ops:
                assert (
                    dir_store.get_result(_TOKENS[idx], ARCH)
                    == journal_store.get_result(_TOKENS[idx], ARCH)
                )
                if op == "design_ok":
                    # payload byte-parity is proven above; here just the
                    # hit/miss outcome (leaves hold numpy arrays, so the
                    # decoded objects do not compare with ==)
                    assert (
                        dir_store.get_design(_TOKENS[idx], SIG, ARCH)[0]
                        == journal_store.get_design(_TOKENS[idx], SIG, ARCH)[0]
                    )
                elif op == "design_err":
                    assert dir_store.get_design(
                        _TOKENS[idx], ("sig",), ARCH
                    ) == journal_store.get_design(_TOKENS[idx], ("sig",), ARCH)
