"""Simulated-annealing schedule tests."""

import pytest

from repro.search.annealing import AnnealingSchedule


class TestAcceptance:
    def test_better_always_accepted(self, rng):
        sched = AnnealingSchedule()
        assert sched.accept(10.0, 5.0, rng)
        assert sched.accept(5.0, 5.0, rng)

    def test_much_worse_rarely_accepted_when_cold(self, rng):
        sched = AnnealingSchedule(initial_temperature=0.30, cooling=0.5, min_temperature=0.01)
        for _ in range(50):
            sched.step(improved=False)
        accepts = sum(sched.accept(1.0, 100.0, rng) for _ in range(200))
        assert accepts < 5

    def test_hot_schedule_explores(self, rng):
        sched = AnnealingSchedule(initial_temperature=5.0)
        accepts = sum(sched.accept(80.0, 100.0, rng) for _ in range(200))
        assert accepts > 150

    def test_zero_incumbent_accepts(self, rng):
        sched = AnnealingSchedule()
        assert sched.accept(0.0, 0.0, rng)


class TestSchedule:
    def test_cooling_monotone(self):
        sched = AnnealingSchedule(initial_temperature=1.0, cooling=0.8)
        temps = []
        for _ in range(10):
            temps.append(sched.temperature)
            sched.step(improved=False)
        assert all(a >= b for a, b in zip(temps, temps[1:]))
        assert sched.temperature >= sched.min_temperature

    def test_termination_needs_cold_and_patience(self):
        sched = AnnealingSchedule(
            initial_temperature=0.3, cooling=0.5, min_temperature=0.05, patience=3
        )
        assert not sched.should_terminate()
        for _ in range(10):
            sched.step(improved=False)
        assert sched.should_terminate()

    def test_improvement_resets_patience(self):
        sched = AnnealingSchedule(
            initial_temperature=0.3, cooling=0.5, min_temperature=0.05, patience=3
        )
        for _ in range(10):
            sched.step(improved=False)
        sched.step(improved=True)
        assert not sched.should_terminate()

    def test_reset(self):
        sched = AnnealingSchedule(initial_temperature=1.0)
        for _ in range(5):
            sched.step(improved=False)
        sched.reset()
        assert sched.temperature == 1.0
        assert not sched.should_terminate()

    def test_validation(self):
        with pytest.raises(ValueError):
            AnnealingSchedule(cooling=1.5)
        with pytest.raises(ValueError):
            AnnealingSchedule(initial_temperature=-1.0)
