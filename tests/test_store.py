"""Design-store tests: codec exactness, warm starts, corruption, concurrency.

The load-bearing contract is the warm start: a second search of the same
matrix against the same store path — through a *fresh* engine and a fresh
store handle, simulating a new process — must perform zero Designer runs
and replay a byte-identical history vs a store-less search.
"""

import json
import threading

import numpy as np
import pytest

from repro.core.designer import DesignError, DesignLeaf
from repro.core.metadata import MatrixMetadataSet
from repro.gpu import A100
from repro.search import SearchBudget, SearchEngine
from repro.search.evaluation import matrix_token
from repro.store import (
    DesignStore,
    StoreError,
    StoreVersionError,
    decode_leaves,
    decode_value,
    encode_leaves,
    encode_value,
    make_result_record,
)
from repro.sparse import banded_matrix, power_law_matrix

BUDGET = SearchBudget(
    max_structures=6, coarse_evals_per_structure=6, max_total_evals=24
)


def search_once(matrix, store=None, seed=3, jobs=1):
    budget = SearchBudget(
        max_structures=BUDGET.max_structures,
        coarse_evals_per_structure=BUDGET.coarse_evals_per_structure,
        max_total_evals=BUDGET.max_total_evals,
        jobs=jobs,
    )
    with SearchEngine(A100, budget=budget, seed=seed, store=store) as engine:
        return engine.search(matrix)


def history_identity(result):
    return [record.identity() for record in result.history]


# ----------------------------------------------------------------------
# Codec
# ----------------------------------------------------------------------
class TestCodec:
    def test_array_roundtrip_exact(self):
        for arr in (
            np.arange(17, dtype=np.int64),
            np.random.default_rng(0).random(33),
            np.array([], dtype=np.float64),
            np.array([True, False, True]),
            np.arange(6, dtype=np.int32).reshape(2, 3),
        ):
            back = decode_value(encode_value(arr))
            assert back.dtype == arr.dtype
            assert back.shape == arr.shape
            assert np.array_equal(back, arr)
            assert back.tobytes() == arr.tobytes()  # bit-exact

    def test_scalars_tuples_nested(self):
        value = {
            "steps": [("warp", "SEG_RED"), ("global", "ATOM")],
            "n": 42,
            "flag": True,
            "none": None,
            "f": 0.1 + 0.2,  # not exactly representable in decimal
            "np_scalar": np.int64(7),
            "nested": {"arr": np.arange(3)},
        }
        back = decode_value(encode_value(value))
        assert back["steps"] == [("warp", "SEG_RED"), ("global", "ATOM")]
        assert type(back["steps"][0]) is tuple
        assert back["n"] == 42 and back["flag"] is True and back["none"] is None
        assert back["f"] == value["f"]  # exact double round-trip
        assert back["np_scalar"] == np.int64(7)
        assert back["np_scalar"].dtype == np.int64
        assert np.array_equal(back["nested"]["arr"], np.arange(3))

    def test_unsupported_type_rejected(self):
        with pytest.raises(StoreError, match="cannot persist"):
            encode_value(object())
        with pytest.raises(StoreError, match="string keys"):
            encode_value({1: "x"})

    def test_reserved_tag_keys_rejected(self):
        """A plain dict carrying a codec tag key would decode as the
        tagged type — the codec must refuse, not silently corrupt."""
        for tag in ("__ndarray__", "__tuple__", "__npscalar__"):
            with pytest.raises(StoreError, match="reserved codec tag"):
                encode_value({"outer": {tag: [1, 2]}})

    def test_leaves_roundtrip(self):
        matrix = banded_matrix(32, bandwidth=2, seed=0, name="m")
        meta = MatrixMetadataSet.from_matrix(matrix)
        leaf = DesignLeaf(meta=meta, branch_path=(0, 1))
        (back,) = decode_leaves(
            json.loads(json.dumps(encode_leaves([leaf])))
        )
        assert back.branch_path == (0, 1)
        assert sorted(back.meta.keys()) == sorted(meta.keys())
        for key in meta.keys():
            a, b = meta.get(key), back.meta.get(key)
            if isinstance(a, np.ndarray):
                assert b.dtype == a.dtype and np.array_equal(a, b)
            else:
                assert a == b


# ----------------------------------------------------------------------
# Store basics
# ----------------------------------------------------------------------
class TestDesignStore:
    def test_design_roundtrip_across_handles(self, tmp_path):
        matrix = banded_matrix(32, bandwidth=2, seed=0, name="m")
        token = matrix_token(matrix)
        meta = MatrixMetadataSet.from_matrix(matrix)
        signature = (("COMPRESS", ()),)
        store = DesignStore(tmp_path / "store")
        store.put_design(
            token, signature, "A100",
            leaves=[DesignLeaf(meta=meta, branch_path=())],
        )
        fresh = DesignStore(tmp_path / "store")  # new handle, same disk
        status, leaves = fresh.get_design(token, signature, "A100")
        assert status == "ok"
        assert np.array_equal(leaves[0].meta.elem_val, matrix.vals)
        # different arch or signature: miss
        assert fresh.get_design(token, signature, "RTX2080") is None
        assert fresh.get_design(token, (("SORT", ()),), "A100") is None

    def test_error_designs_replay(self, tmp_path):
        matrix = banded_matrix(16, bandwidth=1, seed=0, name="m")
        token = matrix_token(matrix)
        store = DesignStore(tmp_path / "store")
        store.put_design(token, ("sig",), "A100", error="BIN: no rows left")
        status, message = store.get_design(token, ("sig",), "A100")
        assert status == "error" and "no rows left" in message

    def test_put_design_takes_exactly_one_outcome(self, tmp_path):
        store = DesignStore(tmp_path / "store")
        token = matrix_token(banded_matrix(8, bandwidth=1, seed=0, name="m"))
        with pytest.raises(StoreError, match="exactly one"):
            store.put_design(token, ("s",), "A100")

    def test_result_roundtrip_and_overwrite(self, tmp_path):
        store = DesignStore(tmp_path / "store")
        matrix = banded_matrix(16, bandwidth=1, seed=0, name="m")
        token = matrix_token(matrix)
        assert store.get_result(token, "A100") is None
        store.put_result(token, "A100", {"best_gflops": 1.0, "via": "search"})
        assert store.get_result(token, "A100")["best_gflops"] == 1.0
        store.put_result(token, "A100", {"best_gflops": 2.0, "via": "search"})
        assert store.get_result(token, "A100")["best_gflops"] == 2.0
        assert len(store.results("A100")) == 1
        assert store.results("RTX2080") == []

    def test_result_metas_sidecar_and_self_heal(self, tmp_path):
        """Nearest-neighbour scans rank on .meta sidecars; a deleted or
        stale sidecar regenerates from one full entry read."""
        matrix = banded_matrix(16, bandwidth=1, seed=0, name="m")
        token = matrix_token(matrix)
        store = DesignStore(tmp_path / "store")
        store.put_result(
            token, "A100", make_result_record(matrix, "A100", 2.5, None)
        )
        digest = store.result_digest(token, "A100")
        ((got_digest, meta),) = store.result_metas("A100")
        assert got_digest == digest
        assert meta["name"] == "m" and meta["best_gflops"] == 2.5
        assert meta["has_graph"] is False
        assert len(meta["features"]) == 8

        sidecar = tmp_path / "store" / "results" / f"{digest}.meta"
        sidecar.unlink()
        ((_, healed),) = DesignStore(tmp_path / "store").result_metas("A100")
        assert healed == meta
        assert sidecar.exists()  # written back

        assert store.result_payload(digest)["best_gflops"] == 2.5
        assert store.result_payload("0" * 32) is None

    def test_gc_drops_orphan_metas(self, tmp_path):
        matrix = banded_matrix(16, bandwidth=1, seed=0, name="m")
        token = matrix_token(matrix)
        store = DesignStore(tmp_path / "store")
        store.put_result(
            token, "A100", make_result_record(matrix, "A100", 1.0, None)
        )
        digest = store.result_digest(token, "A100")
        (tmp_path / "store" / "results" / f"{digest}.json").unlink()
        DesignStore(tmp_path / "store").gc()
        assert not (tmp_path / "store" / "results" / f"{digest}.meta").exists()

    def test_version_mismatch_raises(self, tmp_path):
        root = tmp_path / "store"
        DesignStore(root)
        (root / "store.json").write_text(
            '{"schema": 99, "kind": "design-store"}'
        )
        with pytest.raises(StoreVersionError, match="schema"):
            DesignStore(root)

    def test_non_store_paths_rejected(self, tmp_path):
        target = tmp_path / "file.json"
        target.write_text("{}")
        with pytest.raises(StoreError, match="is a file"):
            DesignStore(target)
        with pytest.raises(StoreError, match="no design store"):
            DesignStore(tmp_path / "missing", create=False)
        bad = tmp_path / "bad"
        bad.mkdir()
        (bad / "store.json").write_text('{"kind": "something-else"}')
        with pytest.raises(StoreError, match="not a design store"):
            DesignStore(bad)


# ----------------------------------------------------------------------
# Warm start (the tentpole acceptance criterion)
# ----------------------------------------------------------------------
class TestWarmStart:
    @pytest.fixture(scope="class")
    def matrix(self):
        return banded_matrix(192, bandwidth=3, seed=1, name="warm")

    @pytest.fixture(scope="class")
    def baseline(self, matrix):
        """Store-less reference search."""
        return search_once(matrix)

    def test_second_process_zero_designer_runs(self, tmp_path, matrix, baseline):
        root = tmp_path / "store"
        cold = search_once(matrix, store=DesignStore(root))
        assert cold.designer_runs > 0
        assert cold.store_misses == cold.designer_runs

        # Fresh engine + fresh handle = a new process, same store path.
        warm = search_once(matrix, store=DesignStore(root))
        assert warm.designer_runs == 0
        assert warm.store_hits > 0 and warm.store_misses == 0

        # Byte-identical histories: store-off vs cold-store vs warm-store.
        assert history_identity(cold) == history_identity(baseline)
        assert history_identity(warm) == history_identity(baseline)
        assert warm.best_gflops == baseline.best_gflops

    def test_warm_start_parallel_identical(self, tmp_path, matrix, baseline):
        root = tmp_path / "store"
        search_once(matrix, store=DesignStore(root))
        warm = search_once(matrix, store=DesignStore(root), jobs=4)
        assert warm.designer_runs == 0
        assert history_identity(warm) == history_identity(baseline)

    def test_failed_designs_warm_start_too(self, tmp_path):
        """Zero Designer runs requires replaying stored *failures* as well:
        a DesignError hit in a fresh process must come from the store, not
        from re-running the Designer."""
        from repro.core.graph import OperatorGraph

        matrix = power_law_matrix(256, avg_degree=6, seed=2, name="plaw")
        bad_graph = OperatorGraph.from_names(["BIN", "GMEM_ATOM_RED"])
        root = tmp_path / "store"

        with SearchEngine(A100, store=DesignStore(root)) as engine:
            with pytest.raises(DesignError, match="COMPRESS first"):
                engine.evaluator.build(matrix, bad_graph)
            designed = engine.builder.designer.executions
            assert designed == 1

        with SearchEngine(A100, store=DesignStore(root)) as fresh:
            with pytest.raises(DesignError, match="COMPRESS first"):
                fresh.evaluator.build(matrix, bad_graph)
            assert fresh.builder.designer.executions == 0  # replayed
            assert fresh.store.stats().design_hits == 1


# ----------------------------------------------------------------------
# Corruption and recovery
# ----------------------------------------------------------------------
class TestCorruption:
    def test_truncated_entry_is_a_miss_not_a_crash(self, tmp_path, capsys):
        matrix = banded_matrix(64, bandwidth=2, seed=0, name="m")
        root = tmp_path / "store"
        search_once(matrix, store=DesignStore(root))
        entries = sorted((root / "designs").glob("*.json"))
        assert entries
        # Truncate one entry mid-payload (simulated torn write from a
        # crashed process without os.replace) and scribble on another.
        text = entries[0].read_text()
        entries[0].write_text(text[: len(text) // 2])
        if len(entries) > 1:
            entries[1].write_text('{"schema": 1, "kind": "design"}')

        store = DesignStore(root)
        warm = search_once(matrix, store=store)
        # The damaged designs were re-designed and the search still works.
        assert warm.designer_runs > 0
        assert history_identity(warm) == history_identity(search_once(matrix))
        assert store.stats().corrupt > 0

        # ... and the re-design healed the store: the corrupt entries were
        # dropped and rewritten, so the next process warm-starts fully.
        healed = search_once(matrix, store=DesignStore(root))
        assert healed.designer_runs == 0

    def test_verify_flags_and_gc_prunes(self, tmp_path):
        matrix = banded_matrix(64, bandwidth=2, seed=0, name="m")
        root = tmp_path / "store"
        store = DesignStore(root)
        search_once(matrix, store=store)
        entry = sorted((root / "designs").glob("*.json"))[0]
        entry.write_text(entry.read_text()[:40])

        statuses = DesignStore(root).verify()
        bad = [s for s in statuses if not s.ok]
        assert len(bad) == 1 and bad[0].kind == "design"

        removed_corrupt, _ = DesignStore(root).gc()
        assert len(removed_corrupt) == 1
        assert all(s.ok for s in DesignStore(root).verify())

    def test_corrupt_entry_quarantined_on_first_detection(self, tmp_path):
        """A damaged entry is moved to ``corrupt/`` the first time it is
        read — not retried forever, not silently deleted — and the key is
        healed by the next write-back."""
        matrix = banded_matrix(16, bandwidth=1, seed=0, name="m")
        token = matrix_token(matrix)
        root = tmp_path / "store"
        store = DesignStore(root)
        store.put_result(token, "A100", {"best_gflops": 1.0, "via": "search"})
        digest = store.result_digest(token, "A100")
        entry = root / "results" / f"{digest}.json"
        entry.write_text("{broken")

        reader = DesignStore(root)
        assert reader.get_result(token, "A100") is None
        assert not entry.exists()  # moved, not left to fail again
        assert (root / "corrupt" / f"{digest}.json").exists()
        assert reader.stats().quarantined == 1
        ((rel, reason),) = reader.quarantine_log
        assert rel == f"results/{digest}.json" and reason
        # second read is a plain miss: no re-quarantine, no crash
        assert reader.get_result(token, "A100") is None
        assert reader.stats().quarantined == 1
        # write-back heals the key
        reader.put_result(token, "A100", {"best_gflops": 2.0, "via": "search"})
        assert reader.get_result(token, "A100")["best_gflops"] == 2.0

    def test_verify_repair_quarantines(self, tmp_path):
        matrix = banded_matrix(16, bandwidth=1, seed=0, name="m")
        token = matrix_token(matrix)
        root = tmp_path / "store"
        store = DesignStore(root)
        store.put_result(token, "A100", {"best_gflops": 1.0, "via": "search"})
        digest = store.result_digest(token, "A100")
        (root / "results" / f"{digest}.json").write_text("not json")

        checker = DesignStore(root)
        flagged = [s for s in checker.verify(repair=True) if not s.ok]
        assert len(flagged) == 1
        assert (root / "corrupt" / f"{digest}.json").exists()
        assert all(s.ok for s in DesignStore(root).verify())

    def test_gc_prunes_unreferenced_designs(self, tmp_path):
        """Designs with no finished result for their (matrix, arch) are
        partial-search residue; gc drops them and keeps referenced ones."""
        a = banded_matrix(64, bandwidth=2, seed=0, name="a")
        b = banded_matrix(96, bandwidth=2, seed=1, name="b")
        root = tmp_path / "store"
        store = DesignStore(root)
        search_once(a, store=store)
        search_once(b, store=store)
        # result recorded only for a → b's designs are unreferenced
        record = make_result_record(a, "A100", 1.0, None)
        store.put_result(matrix_token(a), "A100", record)
        n_designs_before = len(store._list("designs"))

        _, removed = DesignStore(root).gc()
        assert removed  # b's designs went away
        after = DesignStore(root)
        assert len(after._list("designs")) == n_designs_before - len(removed)
        assert len(after._list("results")) == 1


# ----------------------------------------------------------------------
# Concurrency
# ----------------------------------------------------------------------
class TestConcurrentWriters:
    def test_two_engines_one_store_path(self, tmp_path):
        """Two engines racing on one store directory: no corruption, no
        temp-file litter, and both searches match the store-less result."""
        matrix = banded_matrix(128, bandwidth=3, seed=1, name="race")
        root = tmp_path / "store"
        results = {}
        errors = []

        def run(tag):
            try:
                results[tag] = search_once(matrix, store=DesignStore(root))
            except Exception as exc:  # pragma: no cover - failure reporting
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        reference = search_once(matrix)
        for result in results.values():
            assert history_identity(result) == history_identity(reference)
        store = DesignStore(root)
        assert all(s.ok for s in store.verify())
        assert not list((root / "designs").glob("*.tmp"))
        assert not list((root / "results").glob("*.tmp"))
