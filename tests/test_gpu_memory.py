"""Memory-model estimator tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.arch import A100, RTX2080
from repro.gpu.memory import (
    VALUE_BYTES,
    coalescing_efficiency,
    gather_traffic_bytes,
    l2_bandwidth_boost,
    unique_column_count,
)


class TestCoalescing:
    def test_interleaved_always_full(self):
        for run in (1, 4, 100):
            assert coalescing_efficiency(run, interleaved=True) == 1.0

    def test_unit_run_full(self):
        assert coalescing_efficiency(1.0, interleaved=False) == 1.0

    def test_monotone_decreasing_in_run_length(self):
        effs = [coalescing_efficiency(r, False) for r in (1, 2, 4, 8, 16, 64)]
        assert all(a >= b for a, b in zip(effs, effs[1:]))

    def test_floor(self):
        assert coalescing_efficiency(1e6, False) == pytest.approx(0.25)

    @given(st.floats(0.1, 1e5))
    @settings(max_examples=50, deadline=None)
    def test_property_bounded(self, run):
        e = coalescing_efficiency(run, False)
        assert 0.25 <= e <= 1.0


class TestGatherTraffic:
    def test_zero_nnz(self):
        assert gather_traffic_bytes(0, 0, 100, A100) == 0.0

    def test_at_least_first_touches(self):
        traffic = gather_traffic_bytes(1000, 500, 10_000, A100)
        assert traffic >= 500 * VALUE_BYTES

    def test_l2_resident_x_free_repeats(self):
        small = gather_traffic_bytes(100_000, 1000, 1000, A100)
        # x fits easily in L2: repeats are free, only first touches paid.
        assert small <= 1000 * 8 + 1

    def test_large_x_pays_repeats(self):
        n_cols = 100 * 1024 * 1024 // VALUE_BYTES  # 100 MB of x >> 40 MB L2
        big = gather_traffic_bytes(1_000_000, 900_000, n_cols, A100)
        resident = gather_traffic_bytes(1_000_000, 900_000, 100_000, A100)
        assert big > resident

    def test_smaller_l2_pays_more(self):
        n_cols = 3 * 1024 * 1024 // VALUE_BYTES  # 3 MB x: fits A100, not 2080
        a = gather_traffic_bytes(500_000, 400_000, n_cols, A100)
        t = gather_traffic_bytes(500_000, 400_000, n_cols, RTX2080)
        assert t > a


class TestL2Boost:
    def test_fits_gets_full_boost(self):
        boost = l2_bandwidth_boost(1024, A100)
        assert boost == pytest.approx(A100.l2_bandwidth_gbps / A100.dram_bandwidth_gbps)

    def test_overflow_no_boost(self):
        assert l2_bandwidth_boost(10 * A100.l2_cache_bytes, A100) == 1.0

    def test_ramp_monotone(self):
        sizes = np.linspace(0.1, 3.0, 20) * A100.l2_cache_bytes
        boosts = [l2_bandwidth_boost(s, A100) for s in sizes]
        assert all(a >= b for a, b in zip(boosts, boosts[1:]))
        assert min(boosts) >= 1.0


class TestUniqueColumns:
    def test_counts_distinct(self):
        assert unique_column_count(np.array([1, 1, 2, 5, 5, 5])) == 3

    def test_ignores_padding(self):
        assert unique_column_count(np.array([-1, -1, 3])) == 1

    def test_empty(self):
        assert unique_column_count(np.array([], dtype=np.int64)) == 0
        assert unique_column_count(np.array([-1])) == 0
