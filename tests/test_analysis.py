"""Analysis metrics and reporting tests."""

import pytest

from repro.analysis.metrics import (
    ARCHETYPE_SIGNATURES,
    classify_creativity,
    geomean,
    speedup,
    speedup_histogram,
)
from repro.analysis.reporting import render_series, render_table
from repro.core.graph import GraphNode, OperatorGraph


class TestBasicMetrics:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geomean([])
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    def test_speedup(self):
        assert speedup(30.0, 10.0) == 3.0

    def test_speedup_rejects_nonpositive_baseline(self):
        """Regression: inapplicable/incorrect baselines report 0 GFLOPS;
        a silent inf here used to corrupt geomeans and the Fig 10 bins."""
        with pytest.raises(ValueError, match="non-positive baseline"):
            speedup(1.0, 0.0)
        with pytest.raises(ValueError, match="non-positive baseline"):
            speedup(1.0, -2.0)

    def test_speedup_rejects_non_finite(self):
        with pytest.raises(ValueError, match="non-finite"):
            speedup(float("inf"), 1.0)
        with pytest.raises(ValueError, match="non-finite"):
            speedup(1.0, float("nan"))

    def test_geomean_rejects_non_finite(self):
        with pytest.raises(ValueError, match="finite"):
            geomean([1.0, float("inf")])
        with pytest.raises(ValueError, match="finite"):
            geomean([float("nan")])


class TestHistogram:
    def test_fig10_binning(self):
        speedups = [0.7, 0.9, 1.1, 1.25, 1.3, 1.5, 1.9, 2.5]
        hist = speedup_histogram(speedups)
        labels = [h[0] for h in hist]
        assert labels[0] == "<0.8"
        assert labels[-1] == ">=2.0"
        assert sum(pct for _, pct in hist) == pytest.approx(100.0)
        as_dict = dict(hist)
        assert as_dict["1.2-1.4"] == pytest.approx(25.0)  # 1.25, 1.3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            speedup_histogram([])

    def test_non_finite_rejected(self):
        with pytest.raises(ValueError, match="[Nn]on-finite"):
            speedup_histogram([1.0, float("inf")])


class TestCreativity:
    def test_archetype_recognised(self):
        g = OperatorGraph.from_names(list(ARCHETYPE_SIGNATURES["CSR-Scalar"]))
        out = classify_creativity(g)
        assert not out["machine_designed"]
        assert out["matches"] == "CSR-Scalar"

    def test_mixed_design_is_machine_designed(self):
        # The Fig 14a mix: SELL blocking + thread-total + shmem reduction.
        g = OperatorGraph.from_names(
            ["SORT", "COMPRESS", "BMTB_ROW_BLOCK", "BMT_ROW_BLOCK", "BMT_PAD",
             "INTERLEAVED_STORAGE", "SET_RESOURCES", "THREAD_TOTAL_RED",
             "SHMEM_OFFSET_RED", "GMEM_DIRECT_STORE"]
        )
        out = classify_creativity(g)
        assert out["machine_designed"]
        assert out["matches"] is None
        assert not out["branching"]

    def test_branching_detected(self):
        child = [GraphNode(n) for n in ARCHETYPE_SIGNATURES["CSR-Scalar"]]
        g = OperatorGraph([GraphNode("BIN", children=[child])])
        assert classify_creativity(g)["branching"]

    def test_all_signatures_are_valid_graphs(self):
        for name, sig in ARCHETYPE_SIGNATURES.items():
            OperatorGraph.from_names(list(sig)).validate()

    def test_parameter_level_classification(self, small_regular):
        """With a matrix, novelty is judged including parameter values:
        a source structure with different geometry is machine-designed."""
        from repro.baselines import get_baseline

        exact = get_baseline("CSR-Vector").graph(small_regular)
        out = classify_creativity(exact, small_regular)
        assert not out["machine_designed"]
        assert out["matches"] == "CSR-Vector"

        variant = exact.copy()
        variant.nodes[2].params["threads_per_block"] = 64  # non-shipped config
        out = classify_creativity(variant, small_regular)
        assert out["machine_designed"]
        assert not out["structure_novel"]  # same composition, new parameters


class TestReporting:
    def test_render_table(self):
        text = render_table(
            "Title", ["matrix", "GFLOPS"], [["a", 12.5], ["bb", 3.0]]
        )
        assert "Title" in text
        assert "matrix" in text and "GFLOPS" in text
        assert "12.50" in text

    def test_row_width_checked(self):
        with pytest.raises(ValueError):
            render_table("t", ["a", "b"], [["only-one"]])

    def test_render_series(self):
        text = render_series("S", [(1.0, 10.0), (2.0, 20.0)], "size", "gflops")
        assert "S" in text
        assert "#" in text

    def test_empty_series_rejected(self):
        with pytest.raises(ValueError):
            render_series("S", [])
