"""Double-precision extension tests.

The paper evaluates single precision (§VII-A); fp64 support is the natural
library extension.  fp64 kernels must stay numerically identical (the
functional executor is float64 either way) while the cost model charges
doubled value traffic and the card's double-precision compute roof.
"""

import numpy as np
import pytest

from repro.core import OperatorGraph, build_program
from repro.core.kernel.builder import KernelBuilder
from repro.gpu import A100, RTX2080

GRAPH = OperatorGraph.from_names(
    ["COMPRESS", ("BMW_ROW_BLOCK", {"rows_per_block": 1}),
     "WARP_TOTAL_RED", "GMEM_DIRECT_STORE"]
)


class TestPrecision:
    def test_invalid_precision_rejected(self):
        with pytest.raises(ValueError):
            KernelBuilder(precision="fp16")

    def test_same_numbers(self, small_regular, x_for):
        x = x_for(small_regular)
        y32 = build_program(small_regular, GRAPH, precision="fp32").run(x, A100).y
        y64 = build_program(small_regular, GRAPH, precision="fp64").run(x, A100).y
        np.testing.assert_array_equal(y32, y64)

    def test_fp64_moves_more_bytes(self, small_regular, x_for):
        x = x_for(small_regular)
        r32 = build_program(small_regular, GRAPH, precision="fp32").run(x, A100)
        r64 = build_program(small_regular, GRAPH, precision="fp64").run(x, A100)
        i32, i64 = r32.kernel_results[0].inputs, r64.kernel_results[0].inputs
        assert i64.value_bytes == 8
        assert i64.format_bytes > i32.format_bytes
        assert i64.y_bytes > i32.y_bytes
        assert r64.total_time_s > r32.total_time_s

    def test_fp64_slower_on_consumer_card(self, small_regular, x_for):
        """Turing's 1:32 fp64 ratio must show up more than Ampere's 1:2."""
        x = x_for(small_regular)
        penalties = {}
        for gpu in (A100, RTX2080):
            t32 = build_program(small_regular, GRAPH, precision="fp32").run(x, gpu)
            t64 = build_program(small_regular, GRAPH, precision="fp64").run(x, gpu)
            penalties[gpu.name] = t64.total_time_s / t32.total_time_s
        assert penalties["RTX2080"] >= penalties["A100"]

    def test_fp32_default_unchanged(self, small_regular):
        prog = build_program(small_regular, GRAPH)
        assert prog.kernels[0].plan.value_bytes == 4
