"""Search-engine integration tests (kept small: each search runs programs)."""

import numpy as np
import pytest

from repro.baselines import get_baseline
from repro.gpu import A100, RTX2080
from repro.search import SearchBudget, SearchEngine
from repro.sparse import banded_matrix, power_law_matrix


SMALL_BUDGET = SearchBudget(
    max_structures=8, coarse_evals_per_structure=4, max_total_evals=50, ml_top_k=3
)


@pytest.fixture(scope="module")
def regular_result():
    m = banded_matrix(768, bandwidth=4, seed=0, name="search_regular")
    return m, SearchEngine(A100, budget=SMALL_BUDGET, seed=3).search(m)


class TestSearchResult:
    def test_finds_working_program(self, regular_result, x_for):
        m, res = regular_result
        assert res.best_gflops > 0
        assert res.best_graph is not None
        x = x_for(m)
        out = res.best_program.run(x, A100)
        np.testing.assert_allclose(out.y, m.spmv_reference(x), rtol=1e-9, atol=1e-9)

    def test_history_recorded(self, regular_result):
        _, res = regular_result
        assert res.total_evaluations == len(res.history)
        assert res.coarse_iterations > 0
        assert any(r.valid for r in res.history)
        assert res.structures_tried > 0
        assert res.wall_time_s > 0

    def test_best_is_max_of_history(self, regular_result):
        _, res = regular_result
        assert res.best_gflops == pytest.approx(
            max(r.gflops for r in res.history)
        )

    def test_archetype_seeding_matches_csr_scalar(self, regular_result):
        """Seeded archetypes guarantee the search covers the source formats."""
        m, res = regular_result
        scalar = get_baseline("CSR-Scalar").measure(m, A100)
        assert res.best_gflops >= 0.95 * scalar.gflops

    def test_pruning_recorded(self, regular_result):
        _, res = regular_result
        assert "BIN" in res.banned_operators  # regular matrix


class TestBudgets:
    def test_eval_cap_respected(self):
        m = banded_matrix(512, bandwidth=3, seed=1)
        budget = SearchBudget(max_structures=50, coarse_evals_per_structure=10,
                              max_total_evals=12)
        res = SearchEngine(A100, budget=budget, seed=0).search(m)
        assert res.coarse_iterations <= 12

    def test_time_limit_respected(self):
        m = banded_matrix(512, bandwidth=3, seed=1)
        budget = SearchBudget(max_structures=500, coarse_evals_per_structure=10,
                              max_total_evals=10_000, time_limit_s=0.5)
        res = SearchEngine(A100, budget=budget, seed=0).search(m)
        assert res.wall_time_s < 5.0


class TestPruningEffect:
    def test_pruning_shrinks_search(self):
        """Table III's mechanism: pruning cuts iterations on regular input."""
        m = banded_matrix(640, bandwidth=4, seed=2)
        budget = SearchBudget(max_structures=10, coarse_evals_per_structure=4,
                              max_total_evals=60)
        pruned = SearchEngine(A100, budget=budget, seed=5).search(m)
        unpruned = SearchEngine(
            A100, budget=budget, seed=5, enable_pruning=False
        ).search(m)
        assert pruned.banned_operators
        assert not unpruned.banned_operators


class TestCrossGpu:
    def test_a100_beats_2080(self):
        m = power_law_matrix(1024, avg_degree=10, seed=4)
        res_a = SearchEngine(A100, budget=SMALL_BUDGET, seed=1).search(m)
        res_t = SearchEngine(RTX2080, budget=SMALL_BUDGET, seed=1).search(m)
        assert res_a.best_gflops > res_t.best_gflops
        assert res_a.gpu_name == "A100"
        assert res_t.gpu_name == "RTX2080"


class TestSeedingFlag:
    def test_unseeded_search_still_works(self):
        m = banded_matrix(512, bandwidth=3, seed=6)
        res = SearchEngine(
            A100, budget=SMALL_BUDGET, seed=4, enable_seeding=False
        ).search(m)
        assert res.best_gflops > 0
        assert res.best_program is not None


class TestInvalidCandidatesHandled:
    def test_invalid_candidates_score_zero(self, regular_result):
        _, res = regular_result
        for record in res.history:
            if not record.valid:
                assert record.gflops == 0.0
                assert record.error
