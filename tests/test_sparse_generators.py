"""Generator tests: determinism and the pattern properties each family
is supposed to exhibit (the features the paper's figures stratify on)."""

import numpy as np
import pytest

from repro.sparse import generators as gen
from repro.sparse.matrix import IRREGULARITY_THRESHOLD


ALL_GENERATORS = [
    lambda seed: gen.banded_matrix(200, bandwidth=4, seed=seed),
    lambda seed: gen.fem_like_matrix(200, avg_degree=10, seed=seed),
    lambda seed: gen.power_law_matrix(300, avg_degree=6, seed=seed),
    lambda seed: gen.lp_like_matrix(300, seed=seed),
    lambda seed: gen.block_diagonal_matrix(6, block_size=20, seed=seed),
    lambda seed: gen.diagonal_band_matrix(200, n_diagonals=5, seed=seed),
    lambda seed: gen.rows_with_outliers_matrix(300, seed=seed),
    lambda seed: gen.random_uniform_matrix(300, seed=seed),
]


@pytest.mark.parametrize("factory", ALL_GENERATORS)
def test_deterministic(factory):
    a, b = factory(11), factory(11)
    assert a == b


@pytest.mark.parametrize("factory", ALL_GENERATORS)
def test_different_seeds_differ(factory):
    assert factory(1) != factory(2)


@pytest.mark.parametrize("factory", ALL_GENERATORS)
def test_no_empty_rows(factory):
    m = factory(5)
    assert m.stats.empty_rows == 0


@pytest.mark.parametrize("factory", ALL_GENERATORS)
def test_values_nonzero(factory):
    m = factory(5)
    assert (m.vals != 0).all()


class TestBanded:
    def test_bandwidth_respected(self):
        m = gen.banded_matrix(50, bandwidth=2, seed=0)
        assert (np.abs(m.cols - m.rows) <= 2).all()

    def test_regular(self):
        m = gen.banded_matrix(500, bandwidth=5, seed=0)
        assert m.stats.row_variance < IRREGULARITY_THRESHOLD

    def test_interior_rows_full(self):
        m = gen.banded_matrix(50, bandwidth=3, seed=0)
        lengths = m.row_lengths()
        assert (lengths[3:-3] == 7).all()


class TestPowerLaw:
    def test_irregular(self):
        m = gen.power_law_matrix(1500, avg_degree=8, seed=3)
        assert m.stats.row_variance > IRREGULARITY_THRESHOLD

    def test_max_degree_cap(self):
        m = gen.power_law_matrix(400, avg_degree=6, max_degree=50, seed=1)
        assert m.stats.max_row_length <= 50

    def test_has_hub_rows(self):
        m = gen.power_law_matrix(1500, avg_degree=8, seed=3)
        assert m.stats.max_row_length > 5 * m.stats.avg_row_length


class TestLpLike:
    def test_mixture_of_lengths(self):
        m = gen.lp_like_matrix(800, short_len=4, long_len=60, seed=2)
        lengths = m.row_lengths()
        assert (lengths == 4).sum() > 0.7 * 800
        assert lengths.max() >= 30

    def test_rectangular_supported(self):
        m = gen.lp_like_matrix(100, n_cols=40, seed=0)
        assert m.shape == (100, 40)


class TestDiagonalBand:
    def test_entries_on_few_diagonals(self):
        m = gen.diagonal_band_matrix(300, n_diagonals=6, seed=0)
        n_diags = np.unique(m.cols - m.rows).size
        assert n_diags <= 6

    def test_main_diagonal_present(self):
        m = gen.diagonal_band_matrix(100, seed=0)
        assert (m.cols == m.rows).sum() == 100


class TestOutliers:
    def test_bimodal(self):
        m = gen.rows_with_outliers_matrix(400, base_len=10, n_outliers=3, seed=0)
        lengths = m.row_lengths()
        assert (lengths >= 100).sum() == 3
        assert np.median(lengths) == 10


class TestBlockDiagonal:
    def test_shape(self):
        m = gen.block_diagonal_matrix(5, block_size=16, seed=0)
        assert m.shape == (80, 80)

    def test_spiky_rows(self):
        m = gen.block_diagonal_matrix(12, block_size=32, seed=0)
        assert m.stats.max_row_length > 2 * m.stats.avg_row_length


class TestUniform:
    def test_low_variance(self):
        m = gen.random_uniform_matrix(2000, avg_degree=10, seed=0)
        # Poisson: variance ~ mean, far below the irregularity threshold.
        assert m.stats.row_variance < 50
