"""Staged evaluation runtime tests: cached design reuse, parallel batches.

The acceptance bar for the staged runtime: a search with the design cache
and/or the parallel executor enabled must be *indistinguishable* from the
serial uncached search — identical best GFLOPS, history and winning graph —
while running the Designer at least 5x less often.
"""

import numpy as np
import pytest

from repro.core.designer import DesignError, Designer
from repro.core.graph import OperatorGraph
from repro.core.kernel.builder import (
    KernelBuilder,
    design_graph,
    design_signature,
    runtime_nodes_for_leaf,
)
from repro.gpu import A100
from repro.search import DesignCache, EvaluationRuntime, SearchBudget, SearchEngine
from repro.search.evaluation import StagedEvaluator, matrix_token
from repro.sparse import banded_matrix, power_law_matrix


SMALL_BUDGET = SearchBudget(
    max_structures=8, coarse_evals_per_structure=4, max_total_evals=50, ml_top_k=3
)


def _engine(jobs=1, cache=True, seed=3, budget=SMALL_BUDGET):
    return SearchEngine(
        A100,
        budget=SearchBudget(
            max_structures=budget.max_structures,
            coarse_evals_per_structure=budget.coarse_evals_per_structure,
            max_total_evals=budget.max_total_evals,
            ml_top_k=budget.ml_top_k,
            jobs=jobs,
        ),
        seed=seed,
        enable_design_cache=cache,
    )


def _history_tuple(result):
    return [r.identity() for r in result.history]


class TestCacheCorrectness:
    """Cache-on and cache-off searches must be byte-identical."""

    @pytest.fixture(scope="class")
    def matrix(self):
        return power_law_matrix(512, avg_degree=8, seed=2, name="eval_irregular")

    @pytest.fixture(scope="class")
    def cached(self, matrix):
        return _engine(cache=True).search(matrix)

    @pytest.fixture(scope="class")
    def uncached(self, matrix):
        return _engine(cache=False).search(matrix)

    def test_identical_best_gflops(self, cached, uncached):
        assert cached.best_gflops == uncached.best_gflops  # exact, not approx

    def test_identical_history(self, cached, uncached):
        assert _history_tuple(cached) == _history_tuple(uncached)

    def test_identical_best_graph_signature(self, cached, uncached):
        assert cached.best_graph.signature() == uncached.best_graph.signature()

    def test_counters_surfaced(self, cached, uncached):
        # The batched path looks the design cache up once per candidate
        # *group*, not once per candidate — lookups are bounded by (and
        # usually far below) the evaluation count.
        assert cached.design_cache_misses > 0
        assert cached.design_cache_hits + cached.design_cache_misses <= \
            cached.total_evaluations
        assert cached.designer_runs == cached.design_cache_misses
        assert uncached.design_cache_hits == 0
        assert uncached.designer_runs == uncached.total_evaluations


class TestParallelDeterminism:
    """--jobs N must produce seed-stable, jobs-independent results."""

    def test_jobs_match_serial(self):
        m = banded_matrix(640, bandwidth=4, seed=2, name="eval_regular")
        serial = _engine(jobs=1).search(m)
        with _engine(jobs=4) as engine:
            parallel = engine.search(m)
        assert parallel.best_gflops == serial.best_gflops
        assert _history_tuple(parallel) == _history_tuple(serial)
        assert parallel.designer_runs == serial.designer_runs
        assert parallel.design_cache_hits == serial.design_cache_hits
        assert parallel.jobs == 4

    def test_runtime_map_orders_results(self):
        with EvaluationRuntime(jobs=3) as runtime:
            out = runtime.map(lambda v: v * v, list(range(20)))
        assert out == [v * v for v in range(20)]

    def test_runtime_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            EvaluationRuntime(jobs=0)

    def test_injected_runtime_shared_and_caller_owned(self):
        m = banded_matrix(256, bandwidth=3, seed=1, name="shared_rt")
        with EvaluationRuntime(jobs=2) as runtime:
            first = SearchEngine(
                A100, budget=SMALL_BUDGET, seed=3, runtime=runtime
            )
            second = SearchEngine(
                A100, budget=SMALL_BUDGET, seed=3, runtime=runtime
            )
            assert first.runtime is second.runtime
            res = first.search(m)
            first.close()  # must NOT shut down the caller's pool
            assert second.search(m).best_gflops == res.best_gflops


class TestDesignerRunReduction:
    def test_at_least_5x_fewer_designer_runs(self):
        """Acceptance criterion: >=5x on a standard SearchBudget."""
        m = power_law_matrix(512, avg_degree=8, seed=2, name="eval_ratio")
        cached = SearchEngine(A100, budget=SearchBudget(), seed=0).search(m)
        # Uncached baseline runs the Designer once per evaluation.
        assert cached.designer_runs * 5 <= cached.total_evaluations
        # Batched evaluation collapses cache traffic itself: one lookup
        # per design group instead of one per candidate.
        assert (
            cached.design_cache_hits + cached.design_cache_misses
            < cached.total_evaluations
        )


class TestBudgetAndNumbering:
    """Satellite fixes: fine level obeys budgets and iteration ids."""

    @pytest.fixture(scope="class")
    def result(self):
        m = power_law_matrix(512, avg_degree=8, seed=2, name="eval_budget")
        return _engine(seed=1).search(m)

    def test_iteration_ids_unique_and_contiguous(self, result):
        assert [r.iteration for r in result.history] == list(
            range(1, len(result.history) + 1)
        )

    def test_fine_level_counts_against_budget(self):
        m = power_law_matrix(512, avg_degree=8, seed=2, name="eval_cap")
        budget = SearchBudget(
            max_structures=8, coarse_evals_per_structure=4, max_total_evals=20
        )
        res = SearchEngine(A100, budget=budget, seed=1).search(m)
        assert res.total_evaluations <= budget.max_total_evals
        assert len(res.history) <= budget.max_total_evals


class TestStagedBuildEquivalence:
    """design_phase + assembly_phase == the one-shot unstaged build."""

    GRAPHS = [
        ["COMPRESS", ("BMT_ROW_BLOCK", {"rows_per_block": 1}),
         ("SET_RESOURCES", {"threads_per_block": 512, "work_per_thread": 4}),
         "THREAD_TOTAL_RED", "GMEM_DIRECT_STORE"],
        ["COMPRESS", ("SET_RESOURCES", {"threads_per_block": 256,
                                        "work_per_thread": 8}),
         "GMEM_ATOM_RED"],
    ]

    @pytest.mark.parametrize("ops", GRAPHS, ids=["bmt-row", "coo"])
    def test_matches_unstaged_reference(self, small_regular, ops):
        graph = OperatorGraph.from_names(ops)
        builder = KernelBuilder()
        staged = builder.build(small_regular, graph)
        # Unstaged reference: run the Designer on the fully-parameterised
        # graph (the pre-refactor behaviour) and build each leaf directly.
        leaves = Designer().design(small_regular, graph)
        units = [builder.build_unit(leaf) for leaf in leaves]
        assert len(staged.kernels) == len(units)
        for got, want in zip(staged.kernels, units):
            assert got.plan.threads_per_block == want.plan.threads_per_block
            assert got.plan.n_threads == want.plan.n_threads
            np.testing.assert_array_equal(got.plan.thread_of_nz,
                                          want.plan.thread_of_nz)
            assert got.source == want.source
        x = np.random.default_rng(7).random(small_regular.n_cols)
        np.testing.assert_allclose(
            staged.run(x, A100).y, small_regular.spmv_reference(x),
            rtol=1e-9, atol=1e-9,
        )

    def test_runtime_reapply_rejects_bad_params(self, small_regular):
        graph = OperatorGraph.from_names([
            "COMPRESS",
            ("SET_RESOURCES", {"threads_per_block": 100}),
            "GMEM_ATOM_RED",
        ])
        with pytest.raises(DesignError, match="SET_RESOURCES"):
            KernelBuilder().build(small_regular, graph)


class TestDesignSignature:
    def test_runtime_params_masked(self):
        a = OperatorGraph.from_names([
            "COMPRESS", ("SET_RESOURCES", {"threads_per_block": 128}),
            "GMEM_ATOM_RED"])
        b = OperatorGraph.from_names([
            "COMPRESS", ("SET_RESOURCES", {"threads_per_block": 512}),
            "GMEM_ATOM_RED"])
        assert design_signature(a) == design_signature(b)

    def test_design_params_distinguish(self):
        a = OperatorGraph.from_names([
            "COMPRESS", ("BMT_ROW_BLOCK", {"rows_per_block": 1}),
            "SET_RESOURCES", "GMEM_ATOM_RED"])
        b = OperatorGraph.from_names([
            "COMPRESS", ("BMT_ROW_BLOCK", {"rows_per_block": 2}),
            "SET_RESOURCES", "GMEM_ATOM_RED"])
        assert design_signature(a) != design_signature(b)

    def test_design_graph_resets_runtime_params(self):
        g = OperatorGraph.from_names([
            "COMPRESS", ("SET_RESOURCES", {"threads_per_block": 1024}),
            "GMEM_ATOM_RED"])
        canonical = design_graph(g)
        node = next(n for n in canonical.walk() if n.op_name == "SET_RESOURCES")
        assert node.params == node.operator.default_params()
        # original untouched
        orig = next(n for n in g.walk() if n.op_name == "SET_RESOURCES")
        assert orig.params["threads_per_block"] == 1024

    def test_runtime_nodes_follow_branch_paths(self, small_irregular):
        graph = OperatorGraph.from_names([
            "ROW_DIV", "COMPRESS", "SET_RESOURCES", "GMEM_ATOM_RED"])
        leaves = Designer().design(small_irregular, graph)
        assert len(leaves) > 1
        for leaf in leaves:
            nodes = runtime_nodes_for_leaf(graph, leaf.branch_path)
            assert [n.op_name for n in nodes] == ["SET_RESOURCES"]


class TestDesignCache:
    def test_factory_runs_once_per_key(self):
        cache = DesignCache()
        calls = []
        leaves = ["leaf"]
        for _ in range(3):
            out = cache.get_or_design(("k",), lambda: calls.append(1) or leaves)
        assert out is leaves
        assert len(calls) == 1
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (2, 1)

    def test_design_errors_are_cached(self):
        cache = DesignCache()
        calls = []

        def failing():
            calls.append(1)
            raise DesignError("SORT: cannot apply")

        for _ in range(2):
            with pytest.raises(DesignError, match="SORT: cannot apply"):
                cache.get_or_design(("bad",), failing)
        assert len(calls) == 1
        assert cache.stats().hits == 1

    def test_lru_eviction(self):
        cache = DesignCache(max_entries=2)
        for i in range(4):
            cache.get_or_design((i,), lambda i=i: [i])
        assert len(cache) == 2
        assert cache.stats().evictions == 2

    def test_eviction_restores_bound_after_burst(self):
        """A backlog of completed entries (as left by a burst of concurrent
        in-flight misses) shrinks all the way to max_entries on the next
        insert — not just part of the way."""
        from repro.search.evaluation import _CacheEntry

        cache = DesignCache(max_entries=4)
        with cache._lock:
            for i in range(12):
                entry = _CacheEntry()
                entry.done = True
                entry.leaves = [i]
                cache._entries[("burst", i)] = entry
        cache.get_or_design(("fresh",), lambda: ["leaf"])
        assert len(cache) == cache.max_entries

    def test_matrix_token_distinguishes_content(self):
        a = banded_matrix(64, bandwidth=2, seed=0, name="same")
        b = power_law_matrix(64, avg_degree=3, seed=1, name="same")
        assert matrix_token(a) != matrix_token(b)
        assert matrix_token(a) == matrix_token(
            banded_matrix(64, bandwidth=2, seed=0, name="same")
        )

    def test_shared_cache_serves_evaluator(self, small_regular):
        cache = DesignCache()
        evaluator = StagedEvaluator(KernelBuilder(), cache=cache)
        graph = OperatorGraph.from_names(
            ["COMPRESS", "SET_RESOURCES", "GMEM_ATOM_RED"])
        first = evaluator.build(small_regular, graph)
        again = evaluator.build(small_regular, graph)
        stats = cache.stats()
        assert (stats.hits, stats.misses) == (1, 1)
        x = np.random.default_rng(7).random(small_regular.n_cols)
        np.testing.assert_allclose(
            first.run(x, A100).y, again.run(x, A100).y)


class TestSearchMany:
    def test_matches_individual_searches(self):
        mats = [
            banded_matrix(512, bandwidth=3, seed=1, name="many_a"),
            power_law_matrix(512, avg_degree=8, seed=2, name="many_b"),
        ]
        with _engine(jobs=2) as engine:
            combined = engine.search_many(mats, seeds=[7, 9])
        individual = [
            _engine().search(mats[0], seed=7),
            _engine().search(mats[1], seed=9),
        ]
        for got, want in zip(combined, individual):
            assert got.best_gflops == want.best_gflops
            assert _history_tuple(got) == _history_tuple(want)

    def test_seed_length_validated(self):
        with pytest.raises(ValueError):
            _engine().search_many(
                [banded_matrix(64, bandwidth=2, seed=0)], seeds=[1, 2]
            )


class TestEngineIsStateless:
    def test_repeated_searches_identical(self):
        m = power_law_matrix(512, avg_degree=8, seed=2, name="stateless")
        engine = _engine()
        first = engine.search(m)
        second = engine.search(m)  # warm cache, cloned schedule, fresh rng
        assert first.best_gflops == second.best_gflops
        assert _history_tuple(first) == _history_tuple(second)
        # the second pass runs almost entirely from cache
        assert second.designer_runs <= first.designer_runs
        assert second.design_cache_hits >= first.design_cache_hits
