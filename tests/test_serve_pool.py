"""Resolver-pool chaos suite + frontend degradation ladder.

Every scenario here pins the same contract from a different angle: the
serving layer answers **100% of requests, in request order**, no matter
which process dies, hangs, or loses its store underneath it — and any
answer that is not a real measurement says so (``source == "degraded"``
plus a ``note``).  Fault schedules are seeded (:class:`FaultPlan`), so a
failure in CI replays byte-for-byte locally.
"""

from repro.gpu import A100
from repro.reliability.faults import FaultPlan
from repro.reliability.retry import RetryPolicy
from repro.search import SearchBudget
from repro.search.evaluation import matrix_token
from repro.serve import (
    TIER_EXACT,
    Frontend,
    ResolverPool,
    search_claim_key,
)
from repro.sparse import banded_matrix, power_law_matrix
from repro.store import open_store
from repro.store.errors import StoreError
from repro.workloads import DEFAULT_WORKLOAD_NAME

BUDGET = SearchBudget(
    max_structures=3, coarse_evals_per_structure=2, max_total_evals=8,
    ml_top_k=2,
)


def _mats(n, seed=0):
    out = []
    for i in range(n):
        if i % 2:
            out.append(
                power_law_matrix(20 + 4 * i, avg_degree=3, seed=seed + i,
                                 name=f"pow{i}")
            )
        else:
            out.append(
                banded_matrix(20 + 4 * i, bandwidth=2, seed=seed + i,
                              name=f"band{i}")
            )
    return out


def _pool(store_path, **kwargs):
    kwargs.setdefault("workers", 2)
    kwargs.setdefault("backend", "journal")
    kwargs.setdefault("budget", BUDGET)
    kwargs.setdefault("deadline_s", 20.0)
    return ResolverPool(A100, store_path, **kwargs)


def _assert_all_answered(matrices, responses):
    assert len(responses) == len(matrices)
    for matrix, response in zip(matrices, responses):
        assert response.matrix_name == matrix.name  # request order held
        assert response.ok


class TestPoolCleanPath:
    def test_batch_answers_all_and_warms_the_store(self, tmp_path):
        matrices = _mats(4)
        with _pool(tmp_path / "s") as pool:
            cold = pool.resolve_batch(matrices)
            warm = pool.resolve_batch(matrices)
            stats = pool.stats()
        _assert_all_answered(matrices, cold)
        _assert_all_answered(matrices, warm)
        assert all(r.source in ("search", "neighbour", "store") for r in cold)
        assert all(r.source == "store" for r in warm)  # write-backs landed
        assert stats.requests == 8 and stats.answered == 8
        assert stats.restarts == 0 and stats.redispatched == 0

    def test_tier_cap_on_empty_store_degrades_explicitly(self, tmp_path):
        matrices = _mats(2)
        with _pool(tmp_path / "s") as pool:
            responses = pool.resolve_batch(matrices, max_tier=TIER_EXACT)
        _assert_all_answered(matrices, responses)
        for response in responses:
            assert response.source == "degraded"
            assert response.note  # a degraded answer must explain itself


class TestPoolChaos:
    def test_worker_kills_are_survived(self, tmp_path):
        matrices = _mats(6)
        plan = FaultPlan(seed=5, worker_kill_rate=0.5)
        with _pool(tmp_path / "s", faults=plan) as pool:
            responses = pool.resolve_batch(matrices)
            stats = pool.stats()
        _assert_all_answered(matrices, responses)
        assert stats.restarts >= 1  # the schedule fires at 50%
        assert stats.redispatched >= 1

    def test_hang_blows_deadline_and_still_answers(self, tmp_path):
        matrices = _mats(2)
        plan = FaultPlan(seed=0, worker_hang_rate=1.0, worker_hang_s=30.0)
        with _pool(
            tmp_path / "s", workers=1, deadline_s=0.3, faults=plan
        ) as pool:
            responses = pool.resolve_batch(matrices)
            stats = pool.stats()
        _assert_all_answered(matrices, responses)
        assert stats.deadline_kills >= 1
        # every dispatch hangs, so the ladder walks down to the parent
        assert all(r.source == "degraded" for r in responses)
        assert all(r.note for r in responses)

    def test_store_io_errors_degrade_instead_of_failing(self, tmp_path):
        matrices = _mats(3)
        plan = FaultPlan(seed=2, io_error_rate=0.2)
        with _pool(tmp_path / "s", faults=plan) as pool:
            responses = pool.resolve_batch(matrices)
        _assert_all_answered(matrices, responses)

    def test_chaos_schedule_replays(self, tmp_path):
        matrices = _mats(4)
        plan = FaultPlan(seed=9, worker_kill_rate=0.4)
        sources = []
        for run in range(2):
            with _pool(tmp_path / f"s{run}", faults=plan) as pool:
                responses = pool.resolve_batch(matrices)
            _assert_all_answered(matrices, responses)
            sources.append([r.source for r in responses])
        assert sources[0] == sources[1]  # deterministic fault schedule


class TestClaims:
    def test_preclaimed_search_is_not_rerun(self, tmp_path):
        matrix = _mats(1)[0]
        store = open_store(tmp_path / "s", backend="journal")
        key = search_claim_key(
            DEFAULT_WORKLOAD_NAME, A100.name, matrix_token(matrix)[-1]
        )
        assert store.claim_search(key) is True  # someone else holds it
        with _pool(tmp_path / "s") as pool:
            (response,) = pool.resolve_batch([matrix])
            stats = pool.stats()
        # the fence held: no second search ran, the answer says degraded
        assert response.source == "degraded"
        assert stats.claims_lost >= 1
        assert store.results(A100.name) == []

    def test_pool_claims_its_own_searches(self, tmp_path):
        matrix = _mats(1)[0]
        store = open_store(tmp_path / "s", backend="journal")
        with _pool(tmp_path / "s") as pool:
            (response,) = pool.resolve_batch([matrix])
        assert response.source == "search"
        key = search_claim_key(
            DEFAULT_WORKLOAD_NAME, A100.name, matrix_token(matrix)[-1]
        )
        assert key in store.claims()  # durable even after the pool is gone


# ----------------------------------------------------------------------
# Frontend ladder (in-process): one bad request never loses the batch
# ----------------------------------------------------------------------
class _FlakyStore:
    """Delegating store whose ``get_result`` fails for chosen tokens."""

    def __init__(self, inner, fail_names, fails=10**9):
        self._inner = inner
        self._fail_names = set(fail_names)
        self._fails = fails

    def get_result(self, token, arch):
        # scoped tokens carry the matrix name via nothing — match on the
        # digest the caller scoped, recorded at setup time
        if token in self._fail_names and self._fails > 0:
            self._fails -= 1
            raise OSError("injected store read failure")
        return self._inner.get_result(token, arch)

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _fast_fallback():
    return RetryPolicy(
        attempts=3, base_delay_s=0.0001, max_delay_s=0.001,
        retry_on=(OSError, StoreError),
    )


class TestFrontendBatchIsolation:
    def _frontend(self, tmp_path, fail_matrices, fails=10**9):
        store = open_store(tmp_path / "s", backend="journal")
        probe = Frontend(A100, store, budget=BUDGET)
        scoped = {
            probe.workload.scope_token(matrix_token(m)) for m in fail_matrices
        }
        probe.close()
        flaky = _FlakyStore(store, scoped, fails=fails)
        return Frontend(
            A100, flaky, budget=BUDGET, fallback_policy=_fast_fallback()
        )

    def test_poisoned_request_degrades_alone(self, tmp_path):
        matrices = _mats(3)
        with self._frontend(tmp_path, [matrices[1]]) as frontend:
            responses = frontend.resolve_batch(matrices)
            stats = frontend.stats()
        _assert_all_answered(matrices, responses)
        assert responses[1].source == "degraded" and responses[1].note
        assert responses[0].source != "degraded"
        assert responses[2].source != "degraded"
        assert stats.retried >= 1 and stats.degraded == 1

    def test_transient_failure_recovers_fully(self, tmp_path):
        matrices = _mats(3)
        # one failure only: the sharded exact pass eats it, the ordered
        # loop then resolves the request normally
        with self._frontend(tmp_path, [matrices[1]], fails=1) as frontend:
            responses = frontend.resolve_batch(matrices)
        _assert_all_answered(matrices, responses)
        assert all(r.source != "degraded" for r in responses)

    def test_degraded_answer_prefers_stored_donor(self, tmp_path):
        matrices = _mats(2)
        store = open_store(tmp_path / "s", backend="journal")
        with Frontend(A100, store, budget=BUDGET) as warm:
            warm.resolve(matrices[0])  # a donor now exists
        with Frontend(A100, store, budget=BUDGET) as frontend:
            response = frontend.resolve_degraded(matrices[1])
        assert response.source == "degraded"
        assert response.graph is not None
        assert "unverified transfer" in response.note
        # and nothing was written back for the degraded matrix
        token = matrix_token(matrices[1])
        assert store.get_result(
            frontend.workload.scope_token(token), A100.name
        ) is None

    def test_degraded_answer_on_empty_store_is_csr_baseline(self, tmp_path):
        matrix = _mats(1)[0]
        store = open_store(tmp_path / "s", backend="journal")
        with Frontend(A100, store, budget=BUDGET) as frontend:
            response = frontend.resolve_degraded(matrix)
        assert response.source == "degraded"
        assert response.graph is not None
        assert "CSR baseline" in response.note
        assert response.gflops == 0.0  # never fakes a measurement
