"""OperatorGraph structure & validation tests."""

import pytest

from repro.core.graph import GraphNode, GraphValidationError, OperatorGraph


CSR_SCALAR = ["COMPRESS", "BMT_ROW_BLOCK", "SET_RESOURCES",
              "THREAD_TOTAL_RED", "GMEM_DIRECT_STORE"]


class TestConstruction:
    def test_from_names(self):
        g = OperatorGraph.from_names(CSR_SCALAR)
        assert [n.op_name for n in g.nodes] == CSR_SCALAR

    def test_from_names_with_params(self):
        g = OperatorGraph.from_names(
            ["COMPRESS", ("BMT_ROW_BLOCK", {"rows_per_block": 2}),
             "THREAD_BITMAP_RED", "GMEM_ATOM_RED"]
        )
        assert g.nodes[1].params["rows_per_block"] == 2

    def test_unknown_operator_rejected(self):
        with pytest.raises(KeyError):
            GraphNode("NOT_AN_OP")

    def test_params_resolved_with_defaults(self):
        node = GraphNode("SET_RESOURCES")
        assert node.params["threads_per_block"] == 128

    def test_children_only_on_branching(self):
        with pytest.raises(GraphValidationError):
            GraphNode("COMPRESS", children=[[GraphNode("GMEM_ATOM_RED")]])


class TestValidation:
    def test_stage_order_enforced(self):
        with pytest.raises(GraphValidationError, match="cannot follow"):
            OperatorGraph.from_names(
                ["COMPRESS", "THREAD_TOTAL_RED", "BMT_ROW_BLOCK", "GMEM_ATOM_RED"]
            )

    def test_global_reduction_required(self):
        with pytest.raises(GraphValidationError, match="global reduction"):
            OperatorGraph.from_names(["COMPRESS", "THREAD_TOTAL_RED"])

    def test_nothing_after_global(self):
        with pytest.raises(GraphValidationError):
            OperatorGraph.from_names(
                ["COMPRESS", "GMEM_ATOM_RED", "GMEM_DIRECT_STORE"]
            )

    def test_empty_rejected(self):
        with pytest.raises(GraphValidationError):
            OperatorGraph([])

    def test_branch_children_validated(self):
        bad_child = [GraphNode("COMPRESS")]  # no global reduction
        with pytest.raises(GraphValidationError):
            OperatorGraph([GraphNode("BIN", children=[bad_child])])

    def test_branch_without_children_needs_continuation(self):
        with pytest.raises(GraphValidationError, match="continuation"):
            OperatorGraph([GraphNode("ROW_DIV")])

    def test_branch_with_continuation_valid(self):
        g = OperatorGraph.from_names(["ROW_DIV"] + CSR_SCALAR)
        assert g.has_branches

    def test_branch_with_children_must_be_last(self):
        child = [GraphNode(n) for n in CSR_SCALAR]
        with pytest.raises(GraphValidationError, match="last node"):
            OperatorGraph(
                [GraphNode("BIN", children=[child]), GraphNode("COMPRESS")]
            )

    def test_explicit_children_valid(self):
        child_a = [GraphNode(n) for n in CSR_SCALAR]
        child_b = [GraphNode(n) for n in CSR_SCALAR]
        g = OperatorGraph([GraphNode("BIN", children=[child_a, child_b])])
        assert g.has_branches


class TestIntrospection:
    def test_walk_covers_children(self):
        child = [GraphNode(n) for n in CSR_SCALAR]
        g = OperatorGraph([GraphNode("BIN", children=[child])])
        names = g.operator_names()
        assert names[0] == "BIN"
        assert names[1:] == CSR_SCALAR

    def test_depth(self):
        g = OperatorGraph.from_names(CSR_SCALAR)
        assert g.depth() == len(CSR_SCALAR)

    def test_signature_distinguishes_params(self):
        a = OperatorGraph.from_names(CSR_SCALAR)
        b = OperatorGraph.from_names(
            ["COMPRESS", ("BMT_ROW_BLOCK", {"rows_per_block": 2}),
             "SET_RESOURCES", "THREAD_TOTAL_RED", "GMEM_DIRECT_STORE"]
        )
        assert a.signature() != b.signature()
        assert a.structure_signature() == b.structure_signature()

    def test_equality_and_hash(self):
        a = OperatorGraph.from_names(CSR_SCALAR)
        b = OperatorGraph.from_names(CSR_SCALAR)
        assert a == b
        assert hash(a) == hash(b)

    def test_describe_mentions_ops(self):
        text = OperatorGraph.from_names(CSR_SCALAR).describe()
        for op in CSR_SCALAR:
            assert op in text


class TestSerialization:
    def test_round_trip(self):
        g = OperatorGraph.from_names(
            ["SORT", "COMPRESS", ("BMTB_ROW_BLOCK", {"rows_per_block": 64}),
             "SHMEM_OFFSET_RED", "GMEM_DIRECT_STORE"]
        )
        again = OperatorGraph.from_dict(g.to_dict())
        assert again == g

    def test_round_trip_with_branches(self):
        child = [GraphNode(n) for n in CSR_SCALAR]
        g = OperatorGraph([GraphNode("BIN", {"n_bins": 2}, children=[child, list(child)])])
        again = OperatorGraph.from_dict(g.to_dict())
        assert again == g

    def test_copy_independent(self):
        g = OperatorGraph.from_names(CSR_SCALAR)
        c = g.copy()
        c.nodes[1].params["rows_per_block"] = 4
        assert g.nodes[1].params["rows_per_block"] == 1
