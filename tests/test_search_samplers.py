"""Pluggable-sampler tests: registry UX, annealer byte-identity behind the
ask/tell interface, adaptive-sampler determinism across worker counts, and
the successive-halving never-prunes-the-best property."""

from __future__ import annotations

import hashlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import named_matrix
from repro.bench.runner import CorpusRunner
from repro.gpu import A100
from repro.search import (
    AnnealerSampler,
    DTSSampler,
    QMCSampler,
    Sampler,
    ScrambledSobol,
    SearchBudget,
    SearchEngine,
    SuccessiveHalvingPruner,
    TPESampler,
    get_sampler,
    sampler_names,
)
from repro.sparse.generators import power_law_matrix
from repro.store import DesignStore

# The pre-sampler-interface golden digest (tests/test_workloads.py): the
# default sampler must keep reproducing these bytes.
GOLDEN_HISTORY_DIGEST = "698d9cef81eb821dce2abedb5b13ef4e"
GOLDEN_MATRIX = "2D_27628_bjtcai"
GOLDEN_BUDGET = dict(max_total_evals=96)

ADAPTIVE = ["qmc", "tpe", "dts"]


def _history_digest(result) -> str:
    blob = repr([r.identity() for r in result.history])
    return hashlib.blake2b(blob.encode(), digest_size=16).hexdigest()


# ---------------------------------------------------------------------------
# Registry and typo UX
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_names(self):
        assert sampler_names() == ["annealer", "dts", "qmc", "tpe"]

    def test_default_is_annealer(self):
        assert get_sampler(None) is AnnealerSampler

    def test_lookup_by_name_and_class(self):
        assert get_sampler("tpe") is TPESampler
        assert get_sampler(TPESampler) is TPESampler

    def test_unknown_name_lists_registered(self):
        with pytest.raises(ValueError, match="unknown sampler 'bogus'"):
            get_sampler("bogus")
        with pytest.raises(
            ValueError, match="annealer, dts, qmc, tpe"
        ):
            get_sampler("bogus")

    def test_cli_types_reject_cleanly(self):
        import argparse

        from repro.cli import _sampler_arg, _sampler_seed_arg

        assert _sampler_arg("qmc") is QMCSampler
        assert _sampler_seed_arg("17") == 17
        with pytest.raises(argparse.ArgumentTypeError, match="registered samplers"):
            _sampler_arg("bogus")
        with pytest.raises(argparse.ArgumentTypeError, match="integer sampler seed"):
            _sampler_seed_arg("seven")

    def test_duplicate_registration_errors(self):
        from repro.search.samplers import register_sampler

        class Dup(Sampler):
            name = "tpe"

            def begin(self, space, rng, seed):  # pragma: no cover
                pass

            def ask(self, history):  # pragma: no cover
                return None

            def tell(self, batches, records):  # pragma: no cover
                pass

        with pytest.raises(ValueError, match="duplicate sampler"):
            register_sampler(Dup)


# ---------------------------------------------------------------------------
# Byte identity: the annealer behind the interface
# ---------------------------------------------------------------------------

class TestAnnealerByteIdentity:
    @pytest.fixture(scope="class")
    def matrix(self):
        return named_matrix(GOLDEN_MATRIX)

    def _search(self, matrix, jobs=1, store=None, sampler=None):
        engine = SearchEngine(
            A100,
            budget=SearchBudget(jobs=jobs, **GOLDEN_BUDGET),
            seed=0,
            store=store,
            sampler=sampler,
            enable_static_pruning=False,
        )
        try:
            return engine.search(matrix)
        finally:
            engine.close()

    def test_golden_across_jobs_and_store(self, matrix, tmp_path):
        """The acceptance assertion: default-sampler histories are
        byte-identical to the pre-interface engine across jobs 1/4 x
        store on/off."""
        for jobs in (1, 4):
            for use_store in (False, True):
                store = (
                    DesignStore(tmp_path / f"s{jobs}{int(use_store)}")
                    if use_store
                    else None
                )
                result = self._search(matrix, jobs=jobs, store=store)
                assert _history_digest(result) == GOLDEN_HISTORY_DIGEST, (
                    f"jobs={jobs} store={use_store} diverged from the "
                    "pre-sampler-interface golden digest"
                )
                assert result.sampler == "annealer"
                assert result.sampler_pruned == 0

    def test_explicit_annealer_is_the_default(self, matrix):
        assert (
            _history_digest(self._search(matrix, sampler="annealer"))
            == GOLDEN_HISTORY_DIGEST
        )


# ---------------------------------------------------------------------------
# Adaptive-sampler determinism
# ---------------------------------------------------------------------------

class TestAdaptiveDeterminism:
    @pytest.fixture(scope="class")
    def matrix(self):
        return power_law_matrix(512, avg_degree=8, seed=1, name="pl-512")

    def _search(self, matrix, sampler, jobs=1, sampler_seed=None):
        engine = SearchEngine(
            A100,
            budget=SearchBudget(max_total_evals=64, jobs=jobs),
            seed=0,
            sampler=sampler,
            sampler_seed=sampler_seed,
        )
        try:
            return engine.search(matrix)
        finally:
            engine.close()

    @pytest.mark.parametrize("sampler", ADAPTIVE)
    def test_identical_across_jobs(self, matrix, sampler):
        """Same seed -> byte-identical ask sequences (hence histories)
        whether evaluation runs serial or on 4 workers: adaptive samplers
        draw only from their private RNG, never during evaluation."""
        serial = self._search(matrix, sampler, jobs=1)
        pooled = self._search(matrix, sampler, jobs=4)
        assert [r.identity() for r in serial.history] == [
            r.identity() for r in pooled.history
        ]
        assert serial.sampler_pruned == pooled.sampler_pruned

    @pytest.mark.parametrize("sampler", ADAPTIVE)
    def test_sampler_seed_reproducible(self, matrix, sampler):
        a = self._search(matrix, sampler, sampler_seed=7)
        b = self._search(matrix, sampler, sampler_seed=7)
        assert [r.identity() for r in a.history] == [
            r.identity() for r in b.history
        ]

    def test_sampler_seed_changes_trajectory(self, matrix):
        a = self._search(matrix, "qmc", sampler_seed=1)
        b = self._search(matrix, "qmc", sampler_seed=2)
        assert [r.identity() for r in a.history] != [
            r.identity() for r in b.history
        ]

    def test_result_records_sampler(self, matrix):
        result = self._search(matrix, "tpe")
        assert result.sampler == "tpe"
        assert result.sampler_pruned > 0


# ---------------------------------------------------------------------------
# Successive halving
# ---------------------------------------------------------------------------

class TestSuccessiveHalving:
    def test_waves_partition_in_descending_order(self):
        pruner = SuccessiveHalvingPruner()
        scores = [3.0, 9.0, 1.0, 7.0, 5.0, 0.0, 2.0, 8.0]
        waves = pruner.waves(scores)
        flat = [i for wave in waves for i in wave]
        assert sorted(flat) == list(range(len(scores)))
        assert [scores[i] for i in flat] == sorted(scores, reverse=True)
        assert len(waves[0]) == pruner.min_survivors

    def test_small_batches_never_pruned(self):
        pruner = SuccessiveHalvingPruner()
        assert pruner.waves([1.0, 2.0]) == [[1, 0]]
        assert pruner.waves([]) == []

    def test_hyperparameter_validation(self):
        with pytest.raises(ValueError):
            SuccessiveHalvingPruner(eta=1.0)
        with pytest.raises(ValueError):
            SuccessiveHalvingPruner(min_survivors=0)

    @settings(max_examples=200, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                st.booleans(),
            ),
            max_size=40,
        )
    )
    def test_never_prunes_the_eventual_best(self, candidates):
        """Replay the engine's pruned-measurement loop on an arbitrary
        batch: projections are exact for valid candidates (this
        simulator's measurement contract) and invalid candidates measure
        0.  Whatever is pruned, the best fully-measured score must equal
        the best score full measurement of *every* candidate would have
        found."""
        pruner = SuccessiveHalvingPruner()
        projections = [score for score, _valid in candidates]
        measured_all = [
            score if valid else 0.0 for score, valid in candidates
        ]
        waves = pruner.waves(projections)
        measured = []
        for index, wave in enumerate(waves):
            if index > 0 and any(m > 0 for m in measured):
                break  # remaining waves are pruned
            measured.extend(measured_all[i] for i in wave)
        assert max(measured, default=0.0) == max(measured_all, default=0.0)

    def test_pruning_never_hurts_on_a_real_search(self):
        """QMC asks the same candidate sequence regardless of history, and
        per batch the pruner always measures the batch's best valid
        candidate (the hypothesis property above).  So at an equal
        full-measurement budget the pruned run — which stretches the same
        budget across strictly more batches — must end at least as good as
        measuring everything."""
        matrix = power_law_matrix(384, avg_degree=6, seed=2, name="pl-384")
        results = {}
        for pruning in (True, False):
            engine = SearchEngine(
                A100,
                budget=SearchBudget(max_total_evals=400),
                seed=0,
                sampler="qmc",
                sampler_seed=3,
                enable_sampler_pruning=pruning,
            )
            try:
                results[pruning] = engine.search(matrix)
            finally:
                engine.close()
        assert results[True].best_gflops >= results[False].best_gflops
        assert results[True].sampler_pruned > 0
        assert results[False].sampler_pruned == 0


# ---------------------------------------------------------------------------
# Scrambled Sobol
# ---------------------------------------------------------------------------

class TestScrambledSobol:
    def test_points_in_unit_cube_and_deterministic(self):
        a = ScrambledSobol(5, np.random.default_rng(0)).take(64)
        b = ScrambledSobol(5, np.random.default_rng(0)).take(64)
        assert a == b
        assert all(0.0 <= u < 1.0 for point in a for u in point)

    def test_dimension_zero_is_equidistributed(self):
        points = ScrambledSobol(3, np.random.default_rng(1)).take(64)
        first = [p[0] for p in points]
        assert len(set(first)) == 64  # digital shift preserves distinctness
        counts = np.bincount((np.array(first) * 8).astype(int), minlength=8)
        assert counts.min() >= 7 and counts.max() <= 9

    def test_scramble_off_reproduces_sobol(self):
        rng = np.random.default_rng(0)
        points = ScrambledSobol(2, rng, scramble=False).take(3)
        # Gray-code Sobol' starting at x_1: 1/2, then 3/4 / 1/4 pattern.
        assert points[0] == [0.5, 0.5]
        assert sorted(p[0] for p in points[1:]) == [0.25, 0.75]

    def test_rejects_zero_dimensions(self):
        with pytest.raises(ValueError):
            ScrambledSobol(0, np.random.default_rng(0))


# ---------------------------------------------------------------------------
# Bench/store config pinning
# ---------------------------------------------------------------------------

class TestConfigPinning:
    def test_default_sampler_pins_no_keys(self):
        runner = CorpusRunner(
            A100, budget=SearchBudget(max_total_evals=24), seed=0
        )
        with runner:
            config = runner.config()
            matrix = power_law_matrix(256, avg_degree=5, seed=3, name="pl-256")
            record = runner._evaluate_matrix(matrix, family="synthetic", seed=0)
        assert "sampler" not in config["engine"]
        assert "sampler_seed" not in config["engine"]
        assert "sampler" not in record["search"]
        assert "sampler_pruned" not in record["search"]

    def test_non_default_sampler_is_pinned(self):
        engine = SearchEngine(
            A100,
            budget=SearchBudget(max_total_evals=24),
            seed=0,
            sampler="tpe",
            sampler_seed=11,
        )
        runner = CorpusRunner(A100, engine=engine)
        with runner:
            config = runner.config()
            matrix = power_law_matrix(256, avg_degree=5, seed=3, name="pl-256")
            record = runner._evaluate_matrix(matrix, family="synthetic", seed=0)
        assert config["engine"]["sampler"] == "tpe"
        assert config["engine"]["sampler_seed"] == 11
        assert record["search"]["sampler"] == "tpe"
        assert "sampler_pruned" in record["search"]
