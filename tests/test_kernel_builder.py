"""Kernel builder tests: thread distribution, launch geometry, limits."""

import numpy as np
import pytest

from repro.core.designer import Designer
from repro.core.format import build_format
from repro.core.graph import OperatorGraph
from repro.core.kernel.builder import BuildError, KernelBuilder, build_program
from repro.gpu import A100


def plan_for(matrix, ops):
    leaf = Designer().design(matrix, OperatorGraph.from_names(ops))[0]
    builder = KernelBuilder()
    fmt = build_format(leaf.meta)
    return builder.build_plan(leaf.meta, fmt), leaf.meta


class TestDistribution:
    def test_bmt_only(self, small_regular):
        plan, meta = plan_for(
            small_regular,
            ["COMPRESS", "BMT_ROW_BLOCK", "THREAD_TOTAL_RED", "GMEM_DIRECT_STORE"],
        )
        assert plan.n_threads == small_regular.n_rows
        # one thread per row: thread id == current row id
        np.testing.assert_array_equal(plan.thread_of_nz, meta.elem_row)
        assert plan.storage_run_length == pytest.approx(
            small_regular.nnz / small_regular.n_rows, rel=0.1
        )

    def test_bmt_in_bmtb(self, small_regular):
        plan, meta = plan_for(
            small_regular,
            ["COMPRESS", ("BMTB_ROW_BLOCK", {"rows_per_block": 48}),
             "BMT_ROW_BLOCK", "THREAD_TOTAL_RED", "GMEM_ATOM_RED"],
        )
        # 48 bmts per bmtb rounded up to warp multiple
        assert plan.threads_per_block == 64
        n_bmtb = meta.n_blocks("bmtb")
        assert plan.n_threads == n_bmtb * 64

    def test_bmw_round_robin(self, small_regular):
        plan, meta = plan_for(
            small_regular,
            ["COMPRESS", ("BMW_ROW_BLOCK", {"rows_per_block": 1}),
             "WARP_TOTAL_RED", "GMEM_DIRECT_STORE"],
        )
        assert plan.n_threads == small_regular.n_rows * 32
        assert plan.storage_run_length == 1.0  # coalesced round-robin
        # consecutive elements of one warp land on consecutive lanes
        bmw = meta.blocks_of("bmw")
        first_warp = plan.thread_of_nz[bmw == 0]
        assert (np.diff(first_warp[:min(5, first_warp.size)]) == 1).all()

    def test_bmt_in_bmw(self, small_regular):
        plan, _ = plan_for(
            small_regular,
            ["COMPRESS", ("BMW_NNZ_BLOCK", {"nnz_per_block": 64}),
             ("BMT_NNZ_BLOCK", {"nnz_per_block": 2}),
             "THREAD_BITMAP_RED", "WARP_SEG_RED", "GMEM_ATOM_RED"],
        )
        assert plan.n_threads % 32 == 0

    def test_bmtb_only_round_robin(self, small_regular):
        plan, meta = plan_for(
            small_regular,
            ["COMPRESS", ("BMTB_ROW_BLOCK", {"rows_per_block": 32}),
             ("SET_RESOURCES", {"threads_per_block": 64}),
             "SHMEM_OFFSET_RED", "GMEM_DIRECT_STORE"],
        )
        assert plan.threads_per_block == 64
        assert plan.n_threads == meta.n_blocks("bmtb") * 64
        assert plan.storage_run_length == 1.0

    def test_unmapped_grid_stride(self, small_regular):
        plan, _ = plan_for(
            small_regular,
            ["COMPRESS", ("SET_RESOURCES", {"work_per_thread": 2}),
             "GMEM_ATOM_RED"],
        )
        expected_grid = (small_regular.nnz + 1) // 2
        assert abs(plan.n_threads - expected_grid) < 32  # warp rounding
        assert plan.storage_run_length == 1.0


class TestLimits:
    def test_tpb_limit_enforced(self):
        from repro.sparse import banded_matrix

        big = banded_matrix(2048, bandwidth=2, seed=0)
        with pytest.raises(BuildError, match="1024"):
            plan_for(
                big,
                ["COMPRESS", ("BMTB_ROW_BLOCK", {"rows_per_block": 2048}),
                 "BMT_ROW_BLOCK", "THREAD_TOTAL_RED", "GMEM_ATOM_RED"],
            )

    def test_warp_overflow_rejected(self, small_regular):
        # 64 BMTs per BMW > 32 lanes.
        with pytest.raises(BuildError, match="32"):
            plan_for(
                small_regular,
                ["COMPRESS", ("BMW_ROW_BLOCK", {"rows_per_block": 16}),
                 ("BMT_NNZ_BLOCK", {"nnz_per_block": 1}),
                 "THREAD_BITMAP_RED", "GMEM_ATOM_RED"],
            )

    def test_missing_global_reduction_rejected(self, small_regular):
        leaf = Designer().design(
            small_regular,
            OperatorGraph.from_names(
                ["COMPRESS", "BMT_ROW_BLOCK", "THREAD_TOTAL_RED", "GMEM_ATOM_RED"]
            ),
        )[0]
        leaf.meta.reduction_steps.clear()
        builder = KernelBuilder()
        fmt = build_format(leaf.meta)
        with pytest.raises(BuildError):
            builder.build_plan(leaf.meta, fmt)


class TestBuildProgram:
    def test_end_to_end_correct(self, any_small_matrix, x_for):
        g = OperatorGraph.from_names(
            ["SORT", "COMPRESS", ("BMTB_ROW_BLOCK", {"rows_per_block": 32}),
             "BMT_ROW_BLOCK", ("BMT_PAD", {"mode": "max"}),
             "INTERLEAVED_STORAGE", "THREAD_TOTAL_RED", "GMEM_ATOM_RED"]
        )
        prog = build_program(any_small_matrix, g)
        x = x_for(any_small_matrix)
        res = prog.run(x, A100)
        np.testing.assert_allclose(
            res.y, any_small_matrix.spmv_reference(x), rtol=1e-9, atol=1e-9
        )

    def test_compress_flag_changes_bytes(self, small_regular):
        g = OperatorGraph.from_names(
            ["COMPRESS", ("BMTB_ROW_BLOCK", {"rows_per_block": 32}),
             "BMT_ROW_BLOCK", "THREAD_TOTAL_RED", "GMEM_DIRECT_STORE"]
        )
        with_opt = build_program(small_regular, g, compress=True)
        without = build_program(small_regular, g, compress=False)
        assert with_opt.format_bytes < without.format_bytes

    def test_branching_builds_multiple_kernels(self, small_irregular):
        g = OperatorGraph.from_names(
            [("ROW_DIV", {"strategy": "equal", "parts": 2}),
             "COMPRESS", "BMT_ROW_BLOCK", "THREAD_TOTAL_RED", "GMEM_ATOM_RED"]
        )
        prog = build_program(small_irregular, g)
        assert prog.n_kernels == 2

    def test_program_metadata(self, small_regular):
        g = OperatorGraph.from_names(
            ["COMPRESS", "BMT_ROW_BLOCK", "THREAD_TOTAL_RED", "GMEM_DIRECT_STORE"]
        )
        prog = build_program(small_regular, g)
        assert prog.matrix_name == small_regular.name
        assert prog.useful_nnz == small_regular.nnz
        assert "BMT_ROW_BLOCK" in prog.describe()
