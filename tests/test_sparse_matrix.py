"""Unit + property tests for the SparseMatrix container."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.sparse.matrix import IRREGULARITY_THRESHOLD, MatrixStats, SparseMatrix


class TestConstruction:
    def test_basic_triplets(self):
        m = SparseMatrix(3, 4, [0, 1, 2], [1, 2, 3], [1.0, 2.0, 3.0])
        assert m.shape == (3, 4)
        assert m.nnz == 3
        assert m.vals.tolist() == [1.0, 2.0, 3.0]

    def test_rows_sorted_row_major(self):
        m = SparseMatrix(3, 3, [2, 0, 1, 0], [0, 2, 1, 0], [1, 2, 3, 4])
        assert m.rows.tolist() == [0, 0, 1, 2]
        assert m.cols.tolist() == [0, 2, 1, 0]
        assert m.vals.tolist() == [4, 2, 3, 1]

    def test_default_values_are_ones(self):
        m = SparseMatrix(2, 2, [0, 1], [0, 1])
        assert m.vals.tolist() == [1.0, 1.0]

    def test_duplicates_summed(self):
        m = SparseMatrix(2, 2, [0, 0, 0], [1, 1, 0], [2.0, 3.0, 1.0])
        assert m.nnz == 2
        dense = m.to_dense()
        assert dense[0, 1] == 5.0
        assert dense[0, 0] == 1.0

    def test_empty_matrix_allowed(self):
        m = SparseMatrix(3, 3, [], [])
        assert m.nnz == 0
        assert m.stats.avg_row_length == 0.0

    @pytest.mark.parametrize(
        "rows,cols,n_rows,n_cols",
        [([3], [0], 3, 3), ([-1], [0], 3, 3), ([0], [5], 3, 3), ([0], [-2], 3, 3)],
    )
    def test_out_of_range_rejected(self, rows, cols, n_rows, n_cols):
        with pytest.raises(ValueError):
            SparseMatrix(n_rows, n_cols, rows, cols)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SparseMatrix(2, 2, [0, 1], [0])
        with pytest.raises(ValueError):
            SparseMatrix(2, 2, [0], [0], [1.0, 2.0])

    def test_nonpositive_dims_rejected(self):
        with pytest.raises(ValueError):
            SparseMatrix(0, 2, [], [])

    def test_unhashable(self):
        m = SparseMatrix(2, 2, [0], [0])
        with pytest.raises(TypeError):
            hash(m)

    def test_equality(self):
        a = SparseMatrix(2, 2, [0, 1], [0, 1], [1.0, 2.0])
        b = SparseMatrix(2, 2, [1, 0], [1, 0], [2.0, 1.0])
        c = SparseMatrix(2, 2, [0, 1], [0, 1], [1.0, 3.0])
        assert a == b
        assert a != c


class TestStats:
    def test_row_lengths(self, tiny_matrix):
        assert tiny_matrix.row_lengths().tolist() == [2, 1, 1, 1]

    def test_row_offsets(self, tiny_matrix):
        assert tiny_matrix.row_offsets().tolist() == [0, 2, 3, 4, 5]

    def test_stats_values(self, tiny_matrix):
        s = tiny_matrix.stats
        assert isinstance(s, MatrixStats)
        assert s.nnz == 5
        assert s.avg_row_length == pytest.approx(1.25)
        assert s.max_row_length == 2
        assert s.min_row_length == 1
        assert s.empty_rows == 0
        assert s.density == pytest.approx(5 / 16)

    def test_irregularity_definition(self):
        # Paper: irregular <=> row-length variance > 100.
        regular = SparseMatrix(4, 4, [0, 1, 2, 3], [0, 1, 2, 3])
        assert not regular.is_irregular
        rows = [0] * 60 + [1, 2, 3]
        cols = list(range(60)) + [0, 0, 0]
        skewed = SparseMatrix(4, 64, rows, cols)
        assert skewed.stats.row_variance > IRREGULARITY_THRESHOLD
        assert skewed.is_irregular

    def test_stats_cached(self, tiny_matrix):
        assert tiny_matrix.stats is tiny_matrix.stats


class TestLinearAlgebra:
    def test_spmv_reference_matches_dense(self, tiny_matrix):
        x = np.array([1.0, 2.0, 3.0, 4.0])
        expected = tiny_matrix.to_dense() @ x
        np.testing.assert_allclose(tiny_matrix.spmv_reference(x), expected)

    def test_spmv_reference_matches_scipy(self, small_irregular, x_for):
        x = x_for(small_irregular)
        expected = small_irregular.to_scipy_csr() @ x
        np.testing.assert_allclose(small_irregular.spmv_reference(x), expected)

    def test_spmv_shape_validation(self, tiny_matrix):
        with pytest.raises(ValueError):
            tiny_matrix.spmv_reference(np.zeros(5))

    def test_dense_round_trip(self, tiny_matrix):
        back = SparseMatrix.from_dense(tiny_matrix.to_dense())
        assert back == tiny_matrix

    def test_from_scipy(self, small_lp):
        back = SparseMatrix.from_scipy(small_lp.to_scipy_csr())
        assert back == small_lp

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ValueError):
            SparseMatrix.from_dense(np.zeros(4))


class TestDropEmptyRows:
    def test_compacts(self):
        m = SparseMatrix(5, 3, [0, 2, 4], [0, 1, 2], [1.0, 2.0, 3.0])
        compact = m.drop_empty_rows()
        assert compact.n_rows == 3
        assert compact.stats.empty_rows == 0
        assert compact.vals.tolist() == [1.0, 2.0, 3.0]

    def test_noop_when_full(self, tiny_matrix):
        assert tiny_matrix.drop_empty_rows().n_rows == tiny_matrix.n_rows


# ---------------------------------------------------------------------------
# Property-based tests
# ---------------------------------------------------------------------------

@st.composite
def sparse_matrices(draw, max_dim=24, max_nnz=64):
    n_rows = draw(st.integers(1, max_dim))
    n_cols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, max_nnz))
    rows = draw(
        st.lists(st.integers(0, n_rows - 1), min_size=nnz, max_size=nnz)
    )
    cols = draw(
        st.lists(st.integers(0, n_cols - 1), min_size=nnz, max_size=nnz)
    )
    vals = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return SparseMatrix(n_rows, n_cols, rows, cols, vals)


@given(sparse_matrices())
@settings(max_examples=60, deadline=None)
def test_property_spmv_matches_dense(m):
    x = np.linspace(-1.0, 1.0, m.n_cols)
    np.testing.assert_allclose(
        m.spmv_reference(x), m.to_dense() @ x, rtol=1e-10, atol=1e-10
    )


@given(sparse_matrices())
@settings(max_examples=60, deadline=None)
def test_property_row_lengths_sum_to_nnz(m):
    assert int(m.row_lengths().sum()) == m.nnz
    assert m.row_offsets()[-1] == m.nnz
    assert (np.diff(m.row_offsets()) >= 0).all()


@given(sparse_matrices())
@settings(max_examples=60, deadline=None)
def test_property_storage_row_major_unique(m):
    rows, cols = m.rows, m.cols
    if rows.size > 1:
        keys = rows * m.n_cols + cols
        assert (np.diff(keys) > 0).all()  # strictly increasing => sorted+unique
