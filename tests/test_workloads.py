"""Workload-layer tests.

Four acceptance bars:

* every workload's reference computation must match a naive dense-matmul
  oracle (hypothesis property tests over random matrices, including empty
  rows and 1xn / nx1 edges);
* the default SpMV workload must be a *pure generalisation*: search
  histories and design-store entries are byte-identical to the
  pre-workload-layer code (golden digests captured from the seed revision
  before the refactor), across jobs 1/4 x store on/off;
* SpMM / transpose-SpMV searches must complete with verified-correct
  results and populate per-workload store keys that never collide with
  SpMV's;
* the CLI hardening satellites: ``--jobs`` rejects values < 1 cleanly and
  an unknown ``--workload`` lists the registered workloads.
"""

import hashlib
import json
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro import SearchEngine, get_workload, named_matrix
from repro.baselines import get_baseline
from repro.baselines.base import measure_baselines
from repro.bench import CorpusRunner
from repro.cli import main
from repro.gpu import A100
from repro.search import SearchBudget
from repro.search.evaluation import matrix_token
from repro.serve import Frontend
from repro.sparse import SparseMatrix, corpus
from repro.store import DesignStore
from repro.workloads import (
    DEFAULT_WORKLOAD,
    WORKLOADS,
    SpMM,
    SpMV,
    SpMVT,
    Workload,
    register_workload,
)

# ---------------------------------------------------------------------------
# Golden digests captured from the pre-refactor revision (commit c4f5bd4):
# a 96-eval seed-0 store-backed search of @2D_27628_bjtcai and a 48-eval
# seed-0 corpus(2) bench run.  The workload layer must reproduce these
# bytes exactly with the default workload.
# ---------------------------------------------------------------------------
GOLDEN_HISTORY_DIGEST = "698d9cef81eb821dce2abedb5b13ef4e"
GOLDEN_STORE_DIGEST = "18c93c48cc2560e412b0eeaaa51498f6"
# Re-recorded for batched evaluation: bench records embed design-cache
# counters, which now count one lookup per candidate *group* instead of
# one per candidate.  Search histories themselves (GOLDEN_HISTORY_DIGEST,
# GOLDEN_STORE_DIGEST) are unchanged — the batched path is byte-identical.
GOLDEN_BENCH_DIGEST = "80434207aef8754d6ae5dcebbe937d12"

GOLDEN_MATRIX = "2D_27628_bjtcai"
GOLDEN_BUDGET = dict(max_total_evals=96)


def _history_digest(result) -> str:
    blob = repr([r.identity() for r in result.history]).encode()
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


def _tree_digest(root: str) -> str:
    h = hashlib.blake2b(digest_size=16)
    for dirpath, _dirs, files in sorted(os.walk(root)):
        for name in sorted(files):
            path = os.path.join(dirpath, name)
            h.update(os.path.relpath(path, root).encode())
            with open(path, "rb") as fh:
                h.update(fh.read())
    return h.hexdigest()


# ---------------------------------------------------------------------------
# References vs a dense oracle (hypothesis differential tests)
# ---------------------------------------------------------------------------

@st.composite
def sparse_matrices(draw, max_dim=24, max_nnz=64):
    """Random COO matrices incl. empty rows and 1xn / nx1 edge shapes."""
    shape_kind = draw(st.sampled_from(["general", "row", "col"]))
    if shape_kind == "row":
        n_rows, n_cols = 1, draw(st.integers(1, max_dim))
    elif shape_kind == "col":
        n_rows, n_cols = draw(st.integers(1, max_dim)), 1
    else:
        n_rows = draw(st.integers(1, max_dim))
        n_cols = draw(st.integers(1, max_dim))
    nnz = draw(st.integers(0, min(max_nnz, n_rows * n_cols)))
    rows = draw(st.lists(st.integers(0, n_rows - 1), min_size=nnz, max_size=nnz))
    cols = draw(st.lists(st.integers(0, n_cols - 1), min_size=nnz, max_size=nnz))
    vals = draw(
        st.lists(
            st.floats(-10, 10, allow_nan=False, allow_infinity=False),
            min_size=nnz,
            max_size=nnz,
        )
    )
    return SparseMatrix(n_rows, n_cols, rows, cols, vals)


@given(sparse_matrices(), st.integers(2, 6))
@settings(max_examples=60, deadline=None)
def test_property_spmm_matches_dense(m, k):
    x = np.linspace(-1.0, 1.0, m.n_cols * k).reshape(m.n_cols, k)
    np.testing.assert_allclose(
        m.spmm_reference(x), m.to_dense() @ x, rtol=1e-10, atol=1e-10
    )


@given(sparse_matrices())
@settings(max_examples=60, deadline=None)
def test_property_spmv_t_matches_dense(m):
    x = np.linspace(-1.0, 1.0, m.n_rows)
    np.testing.assert_allclose(
        m.spmv_t_reference(x), m.to_dense().T @ x, rtol=1e-10, atol=1e-10
    )


@given(sparse_matrices(), st.sampled_from(sorted(WORKLOADS)))
@settings(max_examples=60, deadline=None)
def test_property_workload_reference_matches_dense_oracle(m, name):
    """Every registered workload agrees with the dense oracle on the
    operand it generates itself."""
    wl = get_workload(name)
    x = wl.make_operand(m)
    assert x.shape == wl.operand_shape(m.n_rows, m.n_cols)
    reference = wl.reference(m, x)
    assert reference.shape == wl.result_shape(m.n_rows, m.n_cols)
    dense = m.to_dense()
    oracle = dense.T @ x if wl.transpose else dense @ x
    np.testing.assert_allclose(reference, oracle, rtol=1e-10, atol=1e-10)
    assert wl.allclose(oracle, reference)


# ---------------------------------------------------------------------------
# Registry, flops and key scoping
# ---------------------------------------------------------------------------

class TestRegistry:
    def test_registered_set(self):
        assert {"spmv", "spmm4", "spmm16", "spmvt"} <= set(WORKLOADS)
        assert get_workload("spmv") is DEFAULT_WORKLOAD
        assert get_workload(None) is DEFAULT_WORKLOAD
        wl = get_workload("spmm16")
        assert get_workload(wl) is wl  # idempotent on instances

    def test_unknown_name_lists_workloads(self):
        with pytest.raises(ValueError, match="registered workloads"):
            get_workload("nope")
        with pytest.raises(ValueError, match="spmm16"):
            get_workload("nope")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            register_workload(SpMV())

    def test_spmm_requires_multiple_columns(self):
        with pytest.raises(ValueError, match="k >= 2"):
            SpMM(1)

    def test_flops_single_source_of_truth(self):
        nnz = 12345
        assert SpMV().flops(nnz) == 2.0 * nnz
        assert get_workload("spmm4").flops(nnz) == 2.0 * nnz * 4
        assert get_workload("spmm16").flops(nnz) == 2.0 * nnz * 16
        assert SpMVT().flops(nnz) == 2.0 * nnz

    def test_shapes(self):
        assert SpMV().operand_shape(3, 5) == (5,)
        assert SpMV().result_shape(3, 5) == (3,)
        assert get_workload("spmm4").operand_shape(3, 5) == (5, 4)
        assert get_workload("spmm4").result_shape(3, 5) == (3, 4)
        assert SpMVT().operand_shape(3, 5) == (3,)
        assert SpMVT().result_shape(3, 5) == (5,)

    def test_scope_token(self):
        token = ("m", 4, 5, 6, "deadbeef")
        assert DEFAULT_WORKLOAD.scope_token(token) == token  # identity
        scoped = {
            name: get_workload(name).scope_token(token)
            for name in ("spmm4", "spmm16", "spmvt")
        }
        digests = {token[-1]} | {t[-1] for t in scoped.values()}
        assert len(digests) == 4  # all distinct
        for t in scoped.values():
            assert len(t) == 5 and t[:4] == token[:4]  # shape preserved
        # deterministic
        assert scoped["spmvt"] == get_workload("spmvt").scope_token(token)

    def test_scope_key(self):
        assert DEFAULT_WORKLOAD.scope_key(("a", 1)) == ("a", 1)
        assert get_workload("spmvt").scope_key(("a", 1)) == ("a", 1, "spmvt")


# ---------------------------------------------------------------------------
# Byte-identity of the default workload vs the pre-refactor seed
# ---------------------------------------------------------------------------

class TestSpmvByteIdentity:
    @pytest.fixture(scope="class")
    def matrix(self):
        return named_matrix(GOLDEN_MATRIX)

    def _search(self, matrix, jobs=1, store=None, workload=None):
        # Static pruning is pinned off: these goldens define the
        # pre-verifier bytes, which pruning-off must keep reproducing.
        engine = SearchEngine(
            A100,
            budget=SearchBudget(jobs=jobs, **GOLDEN_BUDGET),
            seed=0,
            store=store,
            workload=workload,
            enable_static_pruning=False,
        )
        try:
            return engine.search(matrix)
        finally:
            engine.close()

    def test_golden_history_and_store(self, matrix, tmp_path):
        """The acceptance assertion: ``--workload spmv`` reproduces the
        pre-refactor search history and design-store entries byte for
        byte (digests captured at commit c4f5bd4)."""
        store = DesignStore(tmp_path / "store")
        result = self._search(matrix, store=store, workload=get_workload("spmv"))
        assert _history_digest(result) == GOLDEN_HISTORY_DIGEST
        assert _tree_digest(os.fspath(tmp_path / "store")) == GOLDEN_STORE_DIGEST
        assert result.workload == "spmv"

    def test_identity_across_jobs_and_store(self, matrix, tmp_path):
        baseline = self._search(matrix)
        ids = [r.identity() for r in baseline.history]
        for jobs in (1, 4):
            for use_store in (False, True):
                store = (
                    DesignStore(tmp_path / f"s{jobs}{use_store}")
                    if use_store
                    else None
                )
                result = self._search(matrix, jobs=jobs, store=store)
                assert [r.identity() for r in result.history] == ids, (
                    f"jobs={jobs} store={use_store} diverged"
                )

    def test_default_engine_equals_explicit_spmv(self, matrix):
        implicit = self._search(matrix)
        explicit = self._search(matrix, workload=get_workload("spmv"))
        assert [r.identity() for r in implicit.history] == [
            r.identity() for r in explicit.history
        ]


class TestBenchByteIdentity:
    def test_golden_bench_records(self):
        """Bench tables are byte-identical to the pre-refactor code for
        the default workload (wall-clock fields stripped)."""
        runner = CorpusRunner(
            A100, budget=SearchBudget(max_total_evals=48), seed=0,
            static_pruning=False,
        )
        with runner:
            result = runner.run(corpus(2))

        def strip(rec):
            rec = json.loads(json.dumps(rec))
            rec["search"].pop("wall_time_s", None)
            return rec

        blob = json.dumps([strip(r) for r in result.records], sort_keys=True)
        digest = hashlib.blake2b(blob.encode(), digest_size=16).hexdigest()
        assert digest == GOLDEN_BENCH_DIGEST
        # spmv records carry no workload key (historical bytes) and no
        # workload config pin (old result stores stay resumable).
        assert all("workload" not in r for r in result.records)
        assert "workload" not in runner.config()
        # pruning-off runs pin no static_pruning key and no counter, so
        # pre-verifier result stores resume under the same config bytes.
        assert "static_pruning" not in runner.config()["engine"]
        assert all("static_pruned" not in r["search"] for r in result.records)


# ---------------------------------------------------------------------------
# New workloads end to end
# ---------------------------------------------------------------------------

class TestNewWorkloadSearches:
    @pytest.fixture(scope="class")
    def matrix(self):
        return named_matrix(GOLDEN_MATRIX)

    @pytest.mark.parametrize("name", ["spmm16", "spmvt"])
    def test_search_completes_verified(self, matrix, name, tmp_path):
        wl = get_workload(name)
        store = DesignStore(tmp_path / "store")
        engine = SearchEngine(
            A100,
            budget=SearchBudget(**GOLDEN_BUDGET),
            seed=0,
            store=store,
            workload=wl,
        )
        try:
            result = engine.search(matrix)
        finally:
            engine.close()
        assert result.workload == name
        assert result.best_gflops > 0
        # independent re-verification of the winner
        x = wl.make_operand(matrix)
        out = result.best_program.run(x, A100, workload=wl)
        assert wl.allclose(out.y, wl.reference(matrix, x))
        # GFLOPS numerator comes from Workload.flops
        assert out.gflops == pytest.approx(
            wl.flops(matrix.nnz) / out.total_time_s / 1e9
        )
        # per-workload store keys: scoped digest differs from the raw one
        token = matrix_token(matrix)
        scoped = wl.scope_token(token)
        assert scoped[-1] != token[-1]
        assert store.stats().design_writes > 0

    def test_store_keys_never_collide_across_workloads(self, matrix, tmp_path):
        """One store directory, three workloads: every search writes its
        own design partition; re-searching each workload warm-starts."""
        store_path = tmp_path / "shared"
        digests = {}
        for name in ("spmv", "spmm16", "spmvt"):
            store = DesignStore(store_path)
            engine = SearchEngine(
                A100,
                budget=SearchBudget(max_total_evals=32),
                seed=0,
                store=store,
                workload=get_workload(name),
            )
            try:
                first = engine.search(matrix)
            finally:
                engine.close()
            digests[name] = _history_digest(first)
            # fresh engine + same store: zero Designer runs (warm start)
            engine = SearchEngine(
                A100,
                budget=SearchBudget(max_total_evals=32),
                seed=0,
                store=DesignStore(store_path),
                workload=get_workload(name),
            )
            try:
                second = engine.search(matrix)
            finally:
                engine.close()
            assert second.designer_runs == 0, name
            assert _history_digest(second) == digests[name]
        assert len(set(digests.values())) == 3  # distinct trajectories

    def test_unregistered_custom_workload_searches_and_prices(self):
        """A custom Workload instance works without registration — the
        result prices itself from the recorded column count."""

        class CustomSpMM(SpMM):
            def __init__(self):
                super().__init__(3)
                self.name = "custom-spmm3"
                self.display = "custom SpMM (k=3)"

        wl = CustomSpMM()
        matrix = named_matrix("scfxm1-2r")
        engine = SearchEngine(
            A100, budget=SearchBudget(max_total_evals=24), seed=0, workload=wl
        )
        try:
            result = engine.search(matrix)
        finally:
            engine.close()
        assert result.best_gflops > 0
        assert result.workload == "custom-spmm3"
        assert result.workload_k == 3
        assert np.isfinite(result.best_time_s)
        assert result.best_time_s == pytest.approx(
            wl.flops(result.best_program.useful_nnz)
            / (result.best_gflops * 1e9)
        )

    def test_spmvt_rejects_direct_store_kernels(self, matrix):
        """A direct-store row kernel cannot scatter into columns: CSR's
        one-thread-per-row program must be invalid under transpose SpMV
        while the atomic COO program stays correct."""
        wl = get_workload("spmvt")
        x = wl.make_operand(matrix)
        reference = wl.reference(matrix, x)
        coo = get_baseline("COO").measure(matrix, A100, x, reference, workload=wl)
        assert coo.ok
        csr = get_baseline("CSR").measure(matrix, A100, x, reference, workload=wl)
        assert not csr.applicable
        assert "invalid for workload spmvt" in csr.note


class TestTransposeScatterValidation:
    def test_out_of_range_column_is_invalid_plan_not_crash(self):
        """Regression: under the transpose workload the scatter side is
        ``col_indices``, which the plan invariant does not range-check —
        a malformed plan must raise PlanValidationError (recorded as an
        invalid candidate), never a bincount ValueError."""
        from repro.gpu.executor import (
            ExecutionPlan,
            PlanValidationError,
            ReductionStep,
            execute,
            validate_plan,
        )

        wl = get_workload("spmvt")
        plan = ExecutionPlan(
            n_rows=4,
            n_cols=4,
            useful_nnz=3,
            values=np.ones(3),
            col_indices=np.array([0, -1, 2], dtype=np.int64),  # valid elem, bad col
            out_rows=np.array([0, 1, 2], dtype=np.int64),
            thread_of_nz=np.array([0, 1, 2], dtype=np.int64),
            n_threads=4,
            threads_per_block=32,
            reduction_steps=(ReductionStep("global", "GMEM_ATOM_RED"),),
        )
        with pytest.raises(PlanValidationError):
            validate_plan(plan, workload=wl)
        with pytest.raises(PlanValidationError):
            execute(plan, np.ones(4), A100, workload=wl)


class TestBaselineWorkloads:
    @pytest.fixture(scope="class")
    def matrix(self):
        return named_matrix("scfxm1-2r")

    @pytest.mark.parametrize("name", ["spmm4", "spmvt"])
    def test_measure_baselines_batched(self, matrix, name):
        wl = get_workload(name)
        measurements = measure_baselines(
            matrix, A100, ["COO", "CSR", "ELL"], workload=wl
        )
        assert list(measurements) == ["COO", "CSR", "ELL"]
        assert measurements["COO"].ok  # atomics are valid for every workload
        reference = wl.reference(matrix, wl.make_operand(matrix))
        assert reference.shape == wl.result_shape(matrix.n_rows, matrix.n_cols)
        for meas in measurements.values():
            if meas.ok:
                assert meas.gflops > 0 and np.isfinite(meas.time_s)

    def test_spmm_amortises_gather(self, matrix):
        """SpMM reuses each gathered matrix element across k columns, so
        measured GFLOPS must exceed SpMV's on the same kernel."""
        spmv = get_baseline("COO").measure(matrix, A100)
        spmm = get_baseline("COO").measure(
            matrix, A100, workload=get_workload("spmm16")
        )
        assert spmm.ok and spmv.ok
        assert spmm.gflops > spmv.gflops


# ---------------------------------------------------------------------------
# Serving: per-workload result keys and neighbour tiers
# ---------------------------------------------------------------------------

class TestServeIsolation:
    def test_workloads_never_cross_serve(self, tmp_path):
        matrix = named_matrix("scfxm1-2r")
        store_path = tmp_path / "store"
        budget = SearchBudget(
            max_structures=8, coarse_evals_per_structure=6, max_total_evals=48
        )
        with Frontend(A100, DesignStore(store_path), budget=budget) as f:
            first = f.resolve(matrix)
        assert first.source == "search"
        # Same matrix, SpMM workload: the stored SpMV result must be
        # invisible (no exact hit, no neighbour transfer of it).
        wl = get_workload("spmm16")
        with Frontend(
            A100, DesignStore(store_path), budget=budget, workload=wl
        ) as f:
            second = f.resolve(matrix)
            assert second.source == "search"
            third = f.resolve(matrix)
            assert third.source == "store"
            assert third.gflops == second.gflops
        # The SpMV tier still answers its own record exactly.
        with Frontend(A100, DesignStore(store_path), budget=budget) as f:
            again = f.resolve(matrix)
        assert again.source == "store"
        assert again.gflops == first.gflops


# ---------------------------------------------------------------------------
# Bench: per-workload rows
# ---------------------------------------------------------------------------

class TestBenchWorkloads:
    def test_records_carry_workload(self):
        runner = CorpusRunner(
            A100,
            budget=SearchBudget(max_total_evals=24),
            seed=0,
            baselines=["COO", "CSR"],
            workload=get_workload("spmm4"),
        )
        with runner:
            result = runner.run(corpus(1))
        (record,) = result.records
        assert record["workload"] == "spmm4"
        assert runner.config()["workload"] == "spmm4"

    def test_injected_engine_workload_conflict_rejected(self):
        engine = SearchEngine(A100, workload=get_workload("spmvt"))
        try:
            with pytest.raises(ValueError, match="conflicts"):
                CorpusRunner(A100, engine=engine, workload=get_workload("spmm4"))
            runner = CorpusRunner(A100, engine=engine)
            assert runner.workload.name == "spmvt"
        finally:
            engine.close()


# ---------------------------------------------------------------------------
# CLI hardening satellites
# ---------------------------------------------------------------------------

class TestCliHardening:
    def test_jobs_below_one_rejected(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["search", "@scfxm1-2r", "--jobs", "0"])
        assert excinfo.value.code == 2
        assert "worker count must be >= 1" in capsys.readouterr().err

    def test_jobs_non_integer_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["search", "@scfxm1-2r", "--jobs", "two"])
        assert "expected an integer worker count" in capsys.readouterr().err

    def test_unknown_workload_lists_registered(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["search", "@scfxm1-2r", "--workload", "sddmm"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "unknown workload 'sddmm'" in err
        for name in sorted(WORKLOADS):
            assert name in err

    def test_search_workload_flag(self, capsys):
        assert main([
            "search", "@scfxm1-2r", "--workload", "spmm16", "--evals", "24",
        ]) == 0
        out = capsys.readouterr().out
        assert "best machine-designed SpMM (k=16)" in out

    def test_serve_workload_flag(self, tmp_path, capsys):
        store = os.fspath(tmp_path / "store")
        assert main([
            "serve", "@scfxm1-2r", "--store", store, "--workload", "spmvt",
            "--evals", "32",
        ]) == 0
        out = capsys.readouterr().out
        assert "search" in out
