"""Matrix Market I/O tests."""


import pytest

from repro.sparse.io import (
    MatrixMarketError,
    dumps,
    loads,
    read_matrix_market,
    write_matrix_market,
)
from repro.sparse.matrix import SparseMatrix


GENERAL = """%%MatrixMarket matrix coordinate real general
% a comment line
3 4 4
1 1 1.5
1 3 -2.0
2 2 3.25
3 4 4.0
"""

SYMMETRIC = """%%MatrixMarket matrix coordinate real symmetric
3 3 3
1 1 1.0
2 1 2.0
3 2 5.0
"""

SKEW = """%%MatrixMarket matrix coordinate real skew-symmetric
3 3 2
2 1 2.0
3 2 5.0
"""

PATTERN = """%%MatrixMarket matrix coordinate pattern general
2 2 2
1 1
2 2
"""


class TestRead:
    def test_general(self):
        m = loads(GENERAL)
        assert m.shape == (3, 4)
        assert m.nnz == 4
        dense = m.to_dense()
        assert dense[0, 0] == 1.5
        assert dense[0, 2] == -2.0
        assert dense[2, 3] == 4.0

    def test_symmetric_expansion(self):
        m = loads(SYMMETRIC)
        dense = m.to_dense()
        assert dense[1, 0] == 2.0 and dense[0, 1] == 2.0
        assert dense[2, 1] == 5.0 and dense[1, 2] == 5.0
        assert dense[0, 0] == 1.0  # diagonal not duplicated
        assert m.nnz == 5

    def test_skew_symmetric_expansion(self):
        m = loads(SKEW)
        dense = m.to_dense()
        assert dense[1, 0] == 2.0 and dense[0, 1] == -2.0

    def test_pattern_ones(self):
        m = loads(PATTERN)
        assert m.vals.tolist() == [1.0, 1.0]

    def test_integer_field(self):
        m = loads("%%MatrixMarket matrix coordinate integer general\n2 2 1\n1 2 7\n")
        assert m.to_dense()[0, 1] == 7.0

    @pytest.mark.parametrize(
        "text",
        [
            "not a header\n1 1 1\n",
            "%%MatrixMarket matrix array real general\n2 2\n1.0\n",
            "%%MatrixMarket matrix coordinate complex general\n1 1 1\n1 1 1 0\n",
            "%%MatrixMarket matrix coordinate real hermitian\n1 1 1\n1 1 1\n",
            "%%MatrixMarket matrix coordinate real general\n1 1\n",
            "%%MatrixMarket matrix coordinate real general\n1 1 2\n1 1 1.0\n",
            "%%MatrixMarket matrix coordinate real general\n1 1 1\n1 1\n",
        ],
    )
    def test_malformed_rejected(self, text):
        with pytest.raises(MatrixMarketError):
            loads(text)

    def test_too_many_entries_rejected(self):
        text = "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1 1.0\n2 2 2.0\n"
        with pytest.raises(MatrixMarketError):
            loads(text)


class TestIndexBounds:
    """Regression: 1-based indices of 0 or beyond the size line used to
    become negative / out-of-range 0-based indices that only failed (or
    silently corrupted statistics) far downstream."""

    HEADER = "%%MatrixMarket matrix coordinate real general\n"

    def test_zero_row_index_rejected(self):
        with pytest.raises(MatrixMarketError, match="row index 0"):
            loads(self.HEADER + "2 2 1\n0 1 1.0\n")

    def test_zero_col_index_rejected(self):
        with pytest.raises(MatrixMarketError, match="column index 0"):
            loads(self.HEADER + "2 2 1\n1 0 1.0\n")

    def test_row_index_beyond_shape_rejected(self):
        with pytest.raises(MatrixMarketError, match="row index 3.*1..2"):
            loads(self.HEADER + "2 2 1\n3 1 1.0\n")

    def test_col_index_beyond_shape_rejected(self):
        with pytest.raises(MatrixMarketError, match="column index 5.*1..4"):
            loads(self.HEADER + "3 4 2\n1 1 1.0\n2 5 1.0\n")

    def test_nonpositive_dimensions_rejected(self):
        with pytest.raises(MatrixMarketError, match="size line"):
            loads(self.HEADER + "0 2 0\n")
        with pytest.raises(MatrixMarketError, match="size line"):
            loads(self.HEADER + "2 -1 0\n")

    def test_boundary_indices_accepted(self):
        m = loads(self.HEADER + "2 3 2\n1 1 1.0\n2 3 2.0\n")
        assert m.to_dense()[1, 2] == 2.0


class TestWrite:
    def test_round_trip_string(self, small_lp):
        again = loads(dumps(small_lp))
        assert again == small_lp

    def test_round_trip_file(self, tmp_path, small_irregular):
        path = tmp_path / "m.mtx"
        write_matrix_market(small_irregular, path)
        again = read_matrix_market(path)
        assert again == small_irregular
        assert again.name == "m"  # name from filename

    def test_values_preserved_precisely(self):
        m = SparseMatrix(1, 1, [0], [0], [1.0 / 3.0])
        again = loads(dumps(m))
        assert again.vals[0] == m.vals[0]

    def test_header_written(self, tiny_matrix):
        out = dumps(tiny_matrix)
        assert out.startswith("%%MatrixMarket matrix coordinate real general")
        assert "4 4 5" in out.splitlines()[2]
