"""Serving-frontend tests: tier resolution, write-back, counters, batching."""

import numpy as np
import pytest

from repro.gpu import A100
from repro.search import SearchBudget
from repro.search.evaluation import matrix_token
from repro.serve import Frontend, ServeStats, default_serve_budget
from repro.sparse import banded_matrix, power_law_matrix
from repro.store import DesignStore

BUDGET = SearchBudget(
    max_structures=6, coarse_evals_per_structure=6, max_total_evals=24
)


@pytest.fixture
def store(tmp_path):
    return DesignStore(tmp_path / "store")


def frontend(store, jobs=1, budget=BUDGET):
    return Frontend(A100, store, budget=budget, jobs=jobs)


MATRIX_A = banded_matrix(192, bandwidth=3, seed=1, name="a")
MATRIX_B = banded_matrix(224, bandwidth=3, seed=2, name="b")
MATRIX_C = power_law_matrix(256, avg_degree=6, seed=3, name="c")


class TestTiers:
    def test_cold_request_searches_then_exact_hits(self, store):
        with frontend(store) as fe:
            first = fe.resolve(MATRIX_A)
            assert first.source == "search" and first.ok
            assert first.gflops > 0 and first.graph is not None
            assert first.artifact is not None
            again = fe.resolve(MATRIX_A)
            assert again.source == "store"
            assert again.gflops == first.gflops
            assert fe.stats() == ServeStats(
                exact_hits=1, neighbour_hits=0, searches=1, misses=0
            )

    def test_exact_hit_survives_process_restart(self, store, tmp_path):
        with frontend(store) as fe:
            first = fe.resolve(MATRIX_A)
        with frontend(DesignStore(tmp_path / "store")) as fresh:
            served = fresh.resolve(MATRIX_A)
            assert served.source == "store"
            assert served.gflops == first.gflops
            # graph round-trips structurally
            assert served.graph.signature() == first.graph.signature()

    def test_neighbour_transfer_and_writeback(self, store):
        with frontend(store) as fe:
            fe.resolve(MATRIX_A)
            transferred = fe.resolve(MATRIX_B)
            assert transferred.source == "neighbour"
            assert transferred.neighbour_of == "a"
            assert transferred.gflops > 0
            # the transferred answer became an exact entry
            record = store.get_result(matrix_token(MATRIX_B), "A100")
            assert record["via"] == "neighbour"
            assert record["neighbour_of"] == "a"
            assert fe.resolve(MATRIX_B).source == "store"

    def test_transferred_result_is_numerically_verified(self, store):
        """The neighbour tier measures the transplanted design on the new
        matrix — the served GFLOPS must match a direct re-measurement."""
        with frontend(store) as fe:
            fe.resolve(MATRIX_A)
            response = fe.resolve(MATRIX_B)
            assert response.source == "neighbour"
            program_payload = response.artifact
            assert program_payload["matrix_name"] == "b"
            # re-evaluate the same graph directly
            program = fe.engine.evaluator.build(MATRIX_B, response.graph)
            x = np.random.default_rng(0x5EED).random(MATRIX_B.n_cols)
            rerun = program.run(x, A100)
            assert rerun.gflops == pytest.approx(response.gflops)

    def test_miss_when_budget_finds_nothing(self, store):
        empty_budget = SearchBudget(max_structures=1, max_total_evals=0)
        with frontend(store, budget=empty_budget) as fe:
            response = fe.resolve(MATRIX_A)
            assert response.source == "miss" and not response.ok
            assert fe.stats().misses == 1
            assert store.get_result(matrix_token(MATRIX_A), "A100") is None


class TestBatch:
    def test_batch_resolution_order_and_dedup(self, store):
        with frontend(store, jobs=2) as fe:
            fe.resolve(MATRIX_A)  # seed the store
            responses = fe.resolve_batch([MATRIX_A, MATRIX_B, MATRIX_C])
            assert [r.matrix_name for r in responses] == ["a", "b", "c"]
            assert responses[0].source == "store"
            assert all(r.ok for r in responses)
            stats = fe.stats()
            assert stats.requests == 4
            assert stats.exact_hits >= 1

    def test_batch_matches_sequential(self, tmp_path):
        matrices = [MATRIX_A, MATRIX_B, MATRIX_C]
        with frontend(DesignStore(tmp_path / "s1")) as fe:
            sequential = [fe.resolve(m) for m in matrices]
        with frontend(DesignStore(tmp_path / "s2"), jobs=2) as fe:
            batched = fe.resolve_batch(matrices)
        for a, b in zip(sequential, batched):
            assert (a.source, a.gflops, a.neighbour_of) == (
                b.source,
                b.gflops,
                b.neighbour_of,
            )

    def test_batch_neighbour_chaining_matches_sequential(self, tmp_path):
        """Donor chaining inside one batch: request N must be able to
        transfer from request N-1's freshly written result, exactly like
        sequential resolution (and deterministically for any jobs)."""
        donor = banded_matrix(160, bandwidth=3, seed=7, name="d")
        mid = banded_matrix(200, bandwidth=3, seed=8, name="m200")
        near_mid = banded_matrix(208, bandwidth=3, seed=9, name="m208")

        with frontend(DesignStore(tmp_path / "seq")) as fe:
            fe.resolve(donor)
            sequential = [fe.resolve(mid), fe.resolve(near_mid)]
        assert sequential[0].neighbour_of == "d"
        # m208 is closer to m200 than to d — sequential chains on it
        assert sequential[1].neighbour_of == "m200"

        for jobs in (1, 2):
            with frontend(DesignStore(tmp_path / f"b{jobs}"),
                          jobs=jobs) as fe:
                fe.resolve(donor)
                batched = fe.resolve_batch([mid, near_mid])
            assert [
                (r.source, r.gflops, r.neighbour_of) for r in batched
            ] == [
                (r.source, r.gflops, r.neighbour_of) for r in sequential
            ]

    def test_search_tier_reproducible_across_frontends(self, tmp_path):
        """The fallback search seeds from matrix *content*, so what a
        fresh search finds is a property of the matrix, not of which
        frontend (or request history) triggered it."""
        with frontend(DesignStore(tmp_path / "s1")) as fe1:
            r1 = fe1.resolve(MATRIX_C)
            seed1 = fe1._search_seed(matrix_token(MATRIX_C))
        with frontend(DesignStore(tmp_path / "s2")) as fe2:
            fe2.resolve(MATRIX_A)  # unrelated earlier traffic
            r2 = fe2._resolve_search(MATRIX_C, matrix_token(MATRIX_C))
            seed2 = fe2._search_seed(matrix_token(MATRIX_C))
        assert r1.source == r2.source == "search"
        assert seed1 == seed2
        assert r1.gflops == r2.gflops


class TestStatsAndBudget:
    def test_stats_since_delta(self, store):
        with frontend(store) as fe:
            fe.resolve(MATRIX_A)
            before = fe.stats()
            fe.resolve(MATRIX_A)
            delta = fe.stats().since(before)
            assert delta == ServeStats(exact_hits=1)
            assert delta.hit_rate == 1.0

    def test_default_serve_budget_is_bounded(self):
        budget = default_serve_budget(jobs=3)
        assert budget.max_total_evals < SearchBudget().max_total_evals
        assert budget.jobs == 3
