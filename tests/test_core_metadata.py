"""MatrixMetadataSet tests."""

import numpy as np
import pytest

from repro.core.metadata import MatrixMetadataSet, MetadataError


class TestFromMatrix:
    def test_initial_state(self, tiny_matrix):
        meta = MatrixMetadataSet.from_matrix(tiny_matrix)
        assert meta.n_rows == 4
        assert meta.n_cols == 4
        assert meta.useful_nnz == 5
        assert not meta.compressed
        assert meta.stored_elements == 5
        assert not meta.elem_pad.any()
        np.testing.assert_array_equal(meta.origin_rows, np.arange(4))
        assert meta.get("orig_n_rows") == 4
        assert meta.reduction_steps == []
        assert meta.finest_level() is None

    def test_arrays_are_copies(self, tiny_matrix):
        meta = MatrixMetadataSet.from_matrix(tiny_matrix)
        meta.elem_val[0] = 99.0
        assert tiny_matrix.vals[0] != 99.0

    def test_invariants_pass(self, tiny_matrix):
        MatrixMetadataSet.from_matrix(tiny_matrix).check_invariants()


class TestKeyValueInterface:
    def test_put_get(self, tiny_matrix):
        meta = MatrixMetadataSet.from_matrix(tiny_matrix)
        meta.put("user_key", [1, 2, 3])
        assert meta.get("user_key") == [1, 2, 3]
        assert "user_key" in meta
        assert meta.get("missing", "default") == "default"

    def test_keys_view(self, tiny_matrix):
        meta = MatrixMetadataSet.from_matrix(tiny_matrix)
        assert "elem_row" in meta.keys()


class TestCopy:
    def test_independent_arrays(self, tiny_matrix):
        meta = MatrixMetadataSet.from_matrix(tiny_matrix)
        clone = meta.copy()
        clone.elem_val[0] = -1.0
        assert meta.elem_val[0] != -1.0

    def test_independent_lists_and_dicts(self, tiny_matrix):
        meta = MatrixMetadataSet.from_matrix(tiny_matrix)
        clone = meta.copy()
        clone.reduction_steps.append(("global", "GMEM_ATOM_RED"))
        clone.format_arrays["extra"] = np.arange(3)
        assert meta.reduction_steps == []
        assert "extra" not in meta.format_arrays


class TestBlocks:
    def test_set_and_query(self, tiny_matrix):
        meta = MatrixMetadataSet.from_matrix(tiny_matrix)
        blocks = np.array([0, 0, 1, 1, 2])
        meta.set_blocks("bmtb", blocks, 3)
        assert meta.n_blocks("bmtb") == 3
        assert meta.coarsest_level() == "bmtb"
        assert meta.finest_level() == "bmtb"
        meta.set_blocks("bmt", np.array([0, 1, 2, 3, 4]), 5)
        assert meta.finest_level() == "bmt"
        assert meta.coarsest_level() == "bmtb"

    def test_unknown_level_rejected(self, tiny_matrix):
        meta = MatrixMetadataSet.from_matrix(tiny_matrix)
        with pytest.raises(ValueError):
            meta.set_blocks("grid", np.zeros(5, dtype=np.int64), 1)
        with pytest.raises(ValueError):
            meta.blocks_of("grid")


class TestInvariants:
    def test_length_mismatch_detected(self, tiny_matrix):
        meta = MatrixMetadataSet.from_matrix(tiny_matrix)
        meta.elem_col = meta.elem_col[:-1]
        with pytest.raises(MetadataError):
            meta.check_invariants()

    def test_padding_value_checked(self, tiny_matrix):
        meta = MatrixMetadataSet.from_matrix(tiny_matrix)
        pad = meta.elem_pad.copy()
        pad[0] = True
        meta.elem_pad = pad
        with pytest.raises(MetadataError):
            meta.check_invariants()  # padding with non-zero value

    def test_useful_nnz_consistency(self, tiny_matrix):
        meta = MatrixMetadataSet.from_matrix(tiny_matrix)
        meta.put("useful_nnz", 3)
        with pytest.raises(MetadataError):
            meta.check_invariants()

    def test_noncontiguous_blocks_detected(self, tiny_matrix):
        meta = MatrixMetadataSet.from_matrix(tiny_matrix)
        meta.set_blocks("bmtb", np.array([0, 1, 0, 1, 2]), 3)
        with pytest.raises(MetadataError):
            meta.check_invariants()

    def test_nesting_violation_detected(self, tiny_matrix):
        meta = MatrixMetadataSet.from_matrix(tiny_matrix)
        meta.set_blocks("bmtb", np.array([0, 0, 1, 1, 1]), 2)
        # bmt block 1 straddles the bmtb boundary between positions 1 and 2.
        meta.set_blocks("bmt", np.array([0, 1, 1, 2, 3]), 4)
        with pytest.raises(MetadataError):
            meta.check_invariants()

    def test_row_out_of_range_detected(self, tiny_matrix):
        meta = MatrixMetadataSet.from_matrix(tiny_matrix)
        rows = meta.elem_row.copy()
        rows[0] = 99
        meta.elem_row = rows
        with pytest.raises(MetadataError):
            meta.check_invariants()
